package space

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// PairFilter gates candidate pairs during a filtered row query. The
// engine uses it to apply radio-medium state (dead nodes, cut links)
// without the index importing the simulator.
type PairFilter interface {
	// Allow reports whether the pair (i, j) may be linked. It is always
	// called with the query row i first.
	Allow(i, j int32) bool
}

// IndexStats counts the work the incremental index performed.
type IndexStats struct {
	// Ticks is the number of Begin calls since construction.
	Ticks int64
	// RequeriedRows is the total number of rows flagged for
	// recomputation across all ticks (including the initial full build).
	RequeriedRows int64
	// Teleports is the number of teleport steps (border wraps under the
	// square metric) that triggered neighborhood marking.
	Teleports int64
}

// Index is an incrementally maintained spatial index over a population of
// moving positions. Unlike Grid, which is rebuilt from scratch every
// tick, Index keeps its cell buckets current by moving only the nodes
// whose cell changed, and tells the caller which neighbor rows actually
// need recomputation ("requery") each tick. A row can be skipped soundly
// while the total displacement budget since its last recomputation stays
// below the row's cached distance margin to the nearest link flip.
//
// The contract: after Begin, the adjacency row of every node i with
// Requery(i) == false is guaranteed identical to the row a full rescan
// would produce, so the caller may reuse its previous row verbatim. Rows
// are gathered with Row/RowFiltered, which return candidates sorted
// ascending — the canonical CSR representation, making the incremental
// path bit-compatible with a from-scratch rebuild.
//
// Index is not safe for concurrent mutation; Begin must run alone.
// Row/RowFiltered calls for distinct i may run concurrently (they write
// only per-row state).
type Index struct {
	metric    geom.Metric
	radius    float64
	r2        float64
	cells     int
	cellSize  float64
	span      int     // cells scanned on each side of a query cell
	wholeAxis bool    // scan window covers the whole grid
	marginCap float64 // span·cellSize − radius: distance bound to unscanned nodes
	theta     float64 // step length above which a move counts as a teleport
	invDenom  float64 // 1/(2·radius + marginCap): sqrt-free margin lower bound
	cullR2    float64 // (radius + marginCap)²: cell rectangles farther away are skipped

	pos    []geom.Vec2 // caller's live position slice
	last   []geom.Vec2 // positions at the previous Begin
	cellOf []int32     // current cell per node
	slot   []int32     // position of node i inside bucket[cellOf[i]]
	bucket [][]int32   // per-cell member lists (order deterministic, not sorted)
	// bpos mirrors bucket with each member's position, refreshed every
	// Begin: window scans then read candidate positions sequentially
	// from the cell instead of gathering them from pos[j] all over the
	// flat array — one streamed write per node per tick buys ~degree
	// random reads per requeried row.
	bpos [][]geom.Vec2

	// Per-row requery bookkeeping: row i was last recomputed when the
	// node's cumulative path length was baseA[i] and the global drift
	// budget was baseG[i]; it must be recomputed once
	// (stepSum[i]−baseA[i]) + (gSum−baseG[i]) reaches margin[i].
	stepSum []float64
	baseA   []float64
	baseG   []float64
	margin  []float64
	gSum    float64

	requery []bool
	telep   []int32 // scratch: this tick's teleporters
	teleOld []int32 // scratch: their pre-move cells

	stats IndexStats
}

// indexBeta is the slack factor applied to the query radius when sizing
// the scan window: the window reaches radius·(1+indexBeta) so the margin
// cap stays strictly positive and stationary nodes are never forced to
// requery just because an unscanned node sits exactly one window away.
const indexBeta = 0.15

// indexSpan is the cell count the slackened radius is split into per
// axis: finer cells hug the query disc tighter, so a gather visits
// ~π(r+cap)² worth of candidates instead of the 9 r² of a radius-sized
// 3×3 block.
const indexSpan = 2

// NewIndex builds an incremental index over pos, tuned for neighbor
// queries of the given radius. The slice is retained and read on every
// Begin; the caller mutates positions in place between ticks. All rows
// start flagged for requery so the first gather performs the full build.
func NewIndex(metric geom.Metric, radius float64, pos []geom.Vec2) (*Index, error) {
	if radius <= 0 {
		return nil, fmt.Errorf("space: radius must be positive, got %g", radius)
	}
	side := metric.Side()
	cells := int(math.Floor(side * indexSpan / (radius * (1 + indexBeta))))
	if cells < 1 {
		cells = 1
	}
	const maxCellsPerAxis = 1024
	if cells > maxCellsPerAxis {
		cells = maxCellsPerAxis
	}
	n := len(pos)
	x := &Index{
		metric:   metric,
		radius:   radius,
		r2:       radius * radius,
		cells:    cells,
		cellSize: side / float64(cells),
		pos:      pos,
		last:     make([]geom.Vec2, n),
		cellOf:   make([]int32, n),
		slot:     make([]int32, n),
		bucket:   make([][]int32, cells*cells),
		bpos:     make([][]geom.Vec2, cells*cells),
		stepSum:  make([]float64, n),
		baseA:    make([]float64, n),
		baseG:    make([]float64, n),
		margin:   make([]float64, n),
		requery:  make([]bool, n),
	}
	x.span = int(math.Ceil(x.radius / x.cellSize))
	x.wholeAxis = 2*x.span+1 >= x.cells
	x.marginCap = float64(x.span)*x.cellSize - x.radius
	x.theta = x.cellSize / 2
	x.invDenom = 1 / (2*x.radius + x.marginCap)
	reach := x.radius + x.marginCap
	x.cullR2 = reach * reach
	copy(x.last, pos)
	// Pre-size every bucket with headroom over its initial occupancy:
	// cell-crossers otherwise keep tripping append growth in moveBucket
	// for thousands of ticks while per-cell maxima creep toward the
	// occupancy distribution's tail, and the steady-state tick loop is
	// supposed to be allocation-free.
	counts := make([]int32, cells*cells)
	for i := range pos {
		counts[x.cellIndex(pos[i])]++
	}
	for c, cnt := range counts {
		capc := int(cnt) + int(cnt)/2 + 4
		x.bucket[c] = make([]int32, 0, capc)
		x.bpos[c] = make([]geom.Vec2, 0, capc)
	}
	for i := range pos {
		c := int32(x.cellIndex(pos[i]))
		x.cellOf[i] = c
		x.slot[i] = int32(len(x.bucket[c]))
		x.bucket[c] = append(x.bucket[c], int32(i))
		x.bpos[c] = append(x.bpos[c], pos[i])
		x.requery[i] = true
	}
	x.stats.RequeriedRows += int64(n)
	return x, nil
}

// Radius reports the query radius the index was tuned for.
func (x *Index) Radius() float64 { return x.radius }

// Stats returns the accumulated work counters.
func (x *Index) Stats() IndexStats { return x.stats }

// cellIndex maps a position to its cell, clamping strays at the border.
func (x *Index) cellIndex(p geom.Vec2) int {
	cx := int(p.X / x.cellSize)
	cy := int(p.Y / x.cellSize)
	if cx < 0 {
		cx = 0
	} else if cx >= x.cells {
		cx = x.cells - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= x.cells {
		cy = x.cells - 1
	}
	return cy*x.cells + cx
}

// moveBucket relocates node i from cell oldC to newC with a swap-remove,
// keeping every bucket's order a deterministic function of the move
// history.
func (x *Index) moveBucket(i, oldC, newC int32) {
	b := x.bucket[oldC]
	s := x.slot[i]
	lastIdx := int32(len(b) - 1)
	moved := b[lastIdx]
	b[s] = moved
	x.slot[moved] = s
	x.bucket[oldC] = b[:lastIdx]
	bp := x.bpos[oldC]
	bp[s] = bp[lastIdx]
	x.bpos[oldC] = bp[:lastIdx]

	x.slot[i] = int32(len(x.bucket[newC]))
	x.bucket[newC] = append(x.bucket[newC], i)
	x.bpos[newC] = append(x.bpos[newC], x.pos[i])
	x.cellOf[i] = newC
}

// Begin advances the index one tick: it measures every node's step,
// patches cell membership for boundary crossers, and decides which rows
// need recomputation. With forceAll (radio-medium pathologies can flip
// links without any motion) every row is flagged. Returns the number of
// flagged rows; zero means the adjacency provably did not change.
func (x *Index) Begin(forceAll bool) int {
	n := len(x.pos)
	x.stats.Ticks++
	x.telep = x.telep[:0]
	x.teleOld = x.teleOld[:0]
	maxStep := 0.0
	for i := 0; i < n; i++ {
		d := x.metric.Dist(x.last[i], x.pos[i])
		x.stepSum[i] += d
		oldC := x.cellOf[i]
		newC := int32(x.cellIndex(x.pos[i]))
		if newC != oldC {
			x.moveBucket(int32(i), oldC, newC)
		}
		if d > x.theta {
			// A teleport (e.g. a border wrap under the square metric):
			// excluded from the shared drift budget, handled by marking
			// both neighborhoods below.
			x.telep = append(x.telep, int32(i))
			x.teleOld = append(x.teleOld, oldC)
		} else if d > maxStep {
			maxStep = d
		}
		x.last[i] = x.pos[i]
		x.bpos[x.cellOf[i]][x.slot[i]] = x.pos[i]
	}
	x.gSum += maxStep
	x.stats.Teleports += int64(len(x.telep))

	dirty := 0
	if forceAll || len(x.telep) > n/16 {
		for i := range x.requery {
			x.requery[i] = true
		}
		dirty = n
	} else {
		for i := 0; i < n; i++ {
			x.requery[i] = x.stepSum[i]-x.baseA[i]+x.gSum-x.baseG[i] >= x.margin[i]
		}
		for k, j := range x.telep {
			x.requery[j] = true
			x.markAround(x.teleOld[k])
			x.markAround(x.cellOf[j])
		}
		for i := range x.requery {
			if x.requery[i] {
				dirty++
			}
		}
	}
	x.stats.RequeriedRows += int64(dirty)
	return dirty
}

// markAround flags every node within span+1 cells of cell c for requery.
// Unmarked nodes are then at least (span+1)·cellSize away from any
// position inside c, which dominates every margin the index hands out,
// so skipping them remains sound even across a teleport.
func (x *Index) markAround(c int32) {
	reach := x.span + 1
	cx := int(c) % x.cells
	cy := int(c) / x.cells
	wrap := x.metric.Kind() == geom.MetricTorus
	for dy := -reach; dy <= reach; dy++ {
		y := cy + dy
		if wrap {
			y = ((y % x.cells) + x.cells) % x.cells
		} else if y < 0 || y >= x.cells {
			continue
		}
		for dx := -reach; dx <= reach; dx++ {
			cxx := cx + dx
			if wrap {
				cxx = ((cxx % x.cells) + x.cells) % x.cells
			} else if cxx < 0 || cxx >= x.cells {
				continue
			}
			for _, j := range x.bucket[y*x.cells+cxx] {
				x.requery[j] = true
			}
		}
	}
}

// Requery reports whether row i was flagged by the last Begin.
func (x *Index) Requery(i int) bool { return x.requery[i] }

// Row appends the indices of all nodes within the query radius of node i
// (excluding i), sorted ascending, and returns the extended slice. It
// also refreshes row i's requery margin: a lower bound on the distance
// any node would have to drift to flip its link state with i, capped by
// the distance bound to uncovered cells. The per-candidate bound is
// |d²−r²|/(2r+cap) ≤ |d−r|, which avoids a sqrt per candidate; for
// candidates beyond the scan reach the quotient exceeds the cap, so the
// overestimate is absorbed by the cap. Safe to call concurrently for
// distinct i.
func (x *Index) Row(i int, out []int32) []int32 {
	start := len(out)
	p := x.pos[i]
	if x.wholeAxis {
		// Everything is scanned, so there is no cap to absorb the
		// quotient's overestimate for far candidates; use exact margins.
		m := math.Inf(1)
		scan := func(j int32) {
			if int(j) == i {
				return
			}
			d2 := x.metric.Dist2(p, x.pos[j])
			if ad := math.Abs(math.Sqrt(d2) - x.radius); ad < m {
				m = ad
			}
			if d2 <= x.r2 {
				out = append(out, j)
			}
		}
		x.scanBlock(p, scan)
		x.margin[i] = m
		x.baseA[i] = x.stepSum[i]
		x.baseG[i] = x.gSum
		insertionSort(out[start:])
		return out
	}
	// Hot path: the window scan is inlined with the raw |d²−r²| margin
	// minimum tracked un-normalized (one multiply at the end instead of
	// one per candidate). The self candidate contributes |0−r²|, which
	// normalizes to a value above the cap, so it never lowers the margin
	// and needs no branch; it is excluded from the row by the j != i
	// check inside the much rarer in-range case.
	mRaw := math.Inf(1)
	r2 := x.r2
	var wbuf [maxWindowCells]winCell
	win := x.windowCells(p, wbuf[:0])
	for _, c := range win {
		b := x.bucket[c.first]
		bp := x.bpos[c.first][:len(b)]
		for k, j := range b {
			q := bp[k]
			dx := p.X - q.X + c.ox
			dy := p.Y - q.Y + c.oy
			d2 := dx*dx + dy*dy
			lb := d2 - r2
			if lb < 0 {
				lb = -lb
			}
			if lb < mRaw {
				mRaw = lb
			}
			if d2 <= r2 && int(j) != i {
				out = append(out, j)
			}
		}
	}
	m := mRaw * x.invDenom
	if x.marginCap < m {
		m = x.marginCap
	}
	x.margin[i] = m
	x.baseA[i] = x.stepSum[i]
	x.baseG[i] = x.gSum
	insertionSort(out[start:])
	return out
}

// RowFiltered is Row with a pair filter applied (radio-medium state) and
// no margin refresh: when a medium is active every tick requeries every
// row, so margins are never consulted. The filter runs only on
// candidates already inside the radius — the cheap distance test
// rejects the bulk of the window first. Safe to call concurrently for
// distinct i.
func (x *Index) RowFiltered(i int, out []int32, f PairFilter) []int32 {
	start := len(out)
	p := x.pos[i]
	if x.wholeAxis {
		scan := func(j int32) {
			if int(j) == i {
				return
			}
			if x.metric.Dist2(p, x.pos[j]) <= x.r2 && f.Allow(int32(i), j) {
				out = append(out, j)
			}
		}
		x.scanBlock(p, scan)
		insertionSort(out[start:])
		return out
	}
	r2 := x.r2
	var wbuf [maxWindowCells]winCell
	win := x.windowCells(p, wbuf[:0])
	for _, c := range win {
		b := x.bucket[c.first]
		bp := x.bpos[c.first][:len(b)]
		for k, j := range b {
			q := bp[k]
			dx := p.X - q.X + c.ox
			dy := p.Y - q.Y + c.oy
			if dx*dx+dy*dy <= r2 && int(j) != i && f.Allow(int32(i), j) {
				out = append(out, j)
			}
		}
	}
	insertionSort(out[start:])
	return out
}

// maxWindowCells bounds the scan window: span ≤ 2 by construction
// (cellSize ≥ radius·(1+indexBeta)/indexSpan, so ceil(radius/cellSize)
// ≤ indexSpan), giving at most (2·span+1)² = 25 cells. The callers'
// stack buffers use this; windowCells itself appends, so even a
// miscounted bound would only cost a heap spill, never correctness.
const maxWindowCells = (2*indexSpan + 1) * (2*indexSpan + 1)

// winCell is one non-culled cell of a query window: the bucket index
// plus the wrap correction applied to candidate deltas.
type winCell struct {
	first  int32
	ox, oy float64
}

// windowCells appends every non-culled cell of the scan window around p
// to buf, each carrying the wrap correction (ox, oy) ∈ {−side, 0,
// +side}² for that cell's image: candidate deltas are then
// dx = p.X − q.X + ox with no per-candidate min-image branch or metric
// dispatch.
//
// Bit-exactness with Metric.Dist2: inside a non-wholeAxis window
// (cells ≥ 2·span+2) a wrapped cell's nodes satisfy
// |p−q| ∈ [side/2, side), which is exactly the regime where wrapDelta
// applies the same ±side correction — and that addition is exact by
// Sterbenz's lemma, so both paths round identically. At the
// |p−q| = side/2 boundary the two candidate images square to the same
// value, so the computed d² always equals Dist2, for both metrics.
func (x *Index) windowCells(p geom.Vec2, buf []winCell) []winCell {
	cs := x.cellSize
	side := x.metric.Side()
	cx := int(p.X / cs)
	cy := int(p.Y / cs)
	if cx >= x.cells {
		cx = x.cells - 1
	}
	if cy >= x.cells {
		cy = x.cells - 1
	}
	wrap := x.metric.Kind() == geom.MetricTorus
	for dy := -x.span; dy <= x.span; dy++ {
		y := cy + dy
		// Rectangle distance along Y in unwrapped coordinates; valid on
		// the torus too because the window spans less than half the
		// region (non-wholeAxis), so no wrapped image is closer.
		dym := 0.0
		if lo := float64(y) * cs; p.Y < lo {
			dym = lo - p.Y
		} else if hi := float64(y+1) * cs; p.Y > hi {
			dym = p.Y - hi
		}
		oy := 0.0
		if y < 0 {
			if !wrap {
				continue
			}
			y += x.cells
			oy = side // q sits on the high side; p−q corrects upward
		} else if y >= x.cells {
			if !wrap {
				continue
			}
			y -= x.cells
			oy = -side
		}
		rowBase := int32(y * x.cells)
		dym2 := dym * dym
		for dx := -x.span; dx <= x.span; dx++ {
			cxx := cx + dx
			dxm := 0.0
			if lo := float64(cxx) * cs; p.X < lo {
				dxm = lo - p.X
			} else if hi := float64(cxx+1) * cs; p.X > hi {
				dxm = p.X - hi
			}
			if dxm*dxm+dym2 > x.cullR2 {
				continue
			}
			ox := 0.0
			if cxx < 0 {
				if !wrap {
					continue
				}
				cxx += x.cells
				ox = side
			} else if cxx >= x.cells {
				if !wrap {
					continue
				}
				cxx -= x.cells
				ox = -side
			}
			buf = append(buf, winCell{first: rowBase + int32(cxx), ox: ox, oy: oy})
		}
	}
	return buf
}

// scanBlock visits every node in the scan window around p, skipping
// cells whose rectangle lies entirely beyond radius+cap of p (those can
// contain neither links nor margin-relevant candidates). Callers append
// through the closure, which captures their slice variable.
func (x *Index) scanBlock(p geom.Vec2, fn func(j int32)) {
	if x.wholeAxis {
		// The window covers the whole axis; visit every cell exactly
		// once to avoid duplicates under wrapping.
		for _, b := range x.bucket {
			for _, j := range b {
				fn(j)
			}
		}
		return
	}
	cs := x.cellSize
	cx := int(p.X / cs)
	cy := int(p.Y / cs)
	if cx >= x.cells {
		cx = x.cells - 1
	}
	if cy >= x.cells {
		cy = x.cells - 1
	}
	wrap := x.metric.Kind() == geom.MetricTorus
	for dy := -x.span; dy <= x.span; dy++ {
		y := cy + dy
		// Rectangle distance along Y in unwrapped coordinates; valid on
		// the torus too because the window spans less than half the
		// region (non-wholeAxis), so no wrapped image is closer.
		dym := 0.0
		if lo := float64(y) * cs; p.Y < lo {
			dym = lo - p.Y
		} else if hi := float64(y+1) * cs; p.Y > hi {
			dym = p.Y - hi
		}
		if wrap {
			y = ((y % x.cells) + x.cells) % x.cells
		} else if y < 0 || y >= x.cells {
			continue
		}
		for dx := -x.span; dx <= x.span; dx++ {
			cxx := cx + dx
			dxm := 0.0
			if lo := float64(cxx) * cs; p.X < lo {
				dxm = lo - p.X
			} else if hi := float64(cxx+1) * cs; p.X > hi {
				dxm = p.X - hi
			}
			if dxm*dxm+dym*dym > x.cullR2 {
				continue
			}
			if wrap {
				cxx = ((cxx % x.cells) + x.cells) % x.cells
			} else if cxx < 0 || cxx >= x.cells {
				continue
			}
			for _, j := range x.bucket[y*x.cells+cxx] {
				fn(j)
			}
		}
	}
}

// insertionSort sorts a short row ascending in place.
func insertionSort(s []int32) {
	for i := 1; i < len(s); i++ {
		v := s[i]
		j := i - 1
		for j >= 0 && s[j] > v {
			s[j+1] = s[j]
			j--
		}
		s[j+1] = v
	}
}
