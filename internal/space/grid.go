// Package space provides a uniform-grid spatial index over node positions
// in a square region. Neighbor queries within a fixed radius touch only
// the 3×3 block of cells around a point, making whole-network topology
// recomputation O(N·d) per tick instead of O(N²).
package space

import (
	"fmt"
	"math"

	"repro/internal/geom"
)

// Grid is a uniform-cell spatial index. Construct with NewGrid, then call
// Rebuild each time positions change before issuing queries. Grid is not
// safe for concurrent mutation.
//
// Cell membership is stored in a rebuilt CSR layout — a prefix-summed
// start array over a flat item array — so a candidate scan of one cell is
// one contiguous slice, not a pointer chase through per-node links.
type Grid struct {
	metric   geom.Metric
	radius   float64 // query radius the cell size is tuned for
	cells    int     // cells per axis
	cellSize float64
	start    []int32 // CSR cell offsets, len cells²+1
	items    []int32 // node indices grouped by cell, ascending within a cell
	cellIdx  []int32 // scratch: cell index per node, reused across rebuilds
	cursor   []int32 // scratch: per-cell fill cursors
	pos      []geom.Vec2
}

// NewGrid builds an index over a square region described by metric, tuned
// for neighbor queries of the given radius.
func NewGrid(metric geom.Metric, radius float64) (*Grid, error) {
	if radius <= 0 {
		return nil, fmt.Errorf("space: radius must be positive, got %g", radius)
	}
	side := metric.Side()
	cells := int(math.Floor(side / radius))
	if cells < 1 {
		cells = 1
	}
	// Cap the cell count so pathological tiny radii cannot exhaust memory;
	// queries stay correct, only the constant factor changes.
	const maxCellsPerAxis = 1024
	if cells > maxCellsPerAxis {
		cells = maxCellsPerAxis
	}
	return &Grid{
		metric:   metric,
		radius:   radius,
		cells:    cells,
		cellSize: side / float64(cells),
		start:    make([]int32, cells*cells+1),
		cursor:   make([]int32, cells*cells),
	}, nil
}

// Radius reports the query radius the grid was tuned for.
func (g *Grid) Radius() float64 { return g.radius }

// Len reports the number of indexed positions.
func (g *Grid) Len() int { return len(g.pos) }

// Rebuild reindexes the given positions with a counting sort into the CSR
// layout: count per cell, prefix-sum, fill. The slice is retained until
// the next Rebuild; callers must not mutate it while issuing queries.
func (g *Grid) Rebuild(positions []geom.Vec2) {
	g.pos = positions
	n := len(positions)
	if cap(g.items) < n {
		g.items = make([]int32, n)
		g.cellIdx = make([]int32, n)
	}
	g.items = g.items[:n]
	g.cellIdx = g.cellIdx[:n]

	for i := range g.start {
		g.start[i] = 0
	}
	for i, p := range positions {
		c := int32(g.cellOf(p))
		g.cellIdx[i] = c
		g.start[c+1]++
	}
	for c := 1; c < len(g.start); c++ {
		g.start[c] += g.start[c-1]
	}
	copy(g.cursor, g.start[:len(g.start)-1])
	for i := range positions {
		c := g.cellIdx[i]
		g.items[g.cursor[c]] = int32(i)
		g.cursor[c]++
	}
}

// cellOf maps a position to its cell index. Positions are expected inside
// the region; out-of-range coordinates are clamped to the border cells so
// a stray float rounding cannot index out of bounds.
func (g *Grid) cellOf(p geom.Vec2) int {
	cx := int(p.X / g.cellSize)
	cy := int(p.Y / g.cellSize)
	if cx < 0 {
		cx = 0
	} else if cx >= g.cells {
		cx = g.cells - 1
	}
	if cy < 0 {
		cy = 0
	} else if cy >= g.cells {
		cy = g.cells - 1
	}
	return cy*g.cells + cx
}

// Neighbors appends to out the indices of all positions within the query
// radius of positions[i] (excluding i itself) and returns the extended
// slice. Pass a reused buffer to avoid allocation.
func (g *Grid) Neighbors(i int, out []int) []int {
	p := g.pos[i]
	r2 := g.radius * g.radius
	g.forEachCandidate(p, func(j int32) {
		if int(j) != i && g.metric.Dist2(p, g.pos[j]) <= r2 {
			out = append(out, int(j))
		}
	})
	return out
}

// ForEachPair invokes fn once per unordered pair (i, j), i < j, whose
// distance is within the query radius.
func (g *Grid) ForEachPair(fn func(i, j int)) {
	r2 := g.radius * g.radius
	for i := range g.pos {
		p := g.pos[i]
		g.forEachCandidate(p, func(j int32) {
			if int(j) > i && g.metric.Dist2(p, g.pos[j]) <= r2 {
				fn(i, int(j))
			}
		})
	}
}

// forEachCandidate visits every index stored in the 3×3 (or wider, when
// the radius spans multiple cells) block of cells around p. With the
// torus metric the block wraps around the borders.
func (g *Grid) forEachCandidate(p geom.Vec2, fn func(j int32)) {
	span := int(math.Ceil(g.radius / g.cellSize)) // cells to scan each side
	cx := int(p.X / g.cellSize)
	cy := int(p.Y / g.cellSize)
	wrap := g.metric.Kind() == geom.MetricTorus
	if 2*span+1 >= g.cells {
		// The scan window covers the whole axis; visit every cell exactly
		// once to avoid duplicates under wrapping.
		for _, j := range g.items {
			fn(j)
		}
		return
	}
	for dy := -span; dy <= span; dy++ {
		y := cy + dy
		if wrap {
			y = ((y % g.cells) + g.cells) % g.cells
		} else if y < 0 || y >= g.cells {
			continue
		}
		for dx := -span; dx <= span; dx++ {
			x := cx + dx
			if wrap {
				x = ((x % g.cells) + g.cells) % g.cells
			} else if x < 0 || x >= g.cells {
				continue
			}
			c := y*g.cells + x
			for _, j := range g.items[g.start[c]:g.start[c+1]] {
				fn(j)
			}
		}
	}
}
