package space

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

func mustGrid(t *testing.T, kind geom.MetricKind, side, radius float64) *Grid {
	t.Helper()
	m, err := geom.NewMetric(kind, side)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGrid(m, radius)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func randomPositions(n int, side float64, seed int64) []geom.Vec2 {
	rng := rand.New(rand.NewSource(seed))
	ps := make([]geom.Vec2, n)
	for i := range ps {
		ps[i] = geom.Vec2{X: rng.Float64() * side, Y: rng.Float64() * side}
	}
	return ps
}

// bruteNeighbors is the O(N²) reference implementation.
func bruteNeighbors(m geom.Metric, ps []geom.Vec2, i int, r float64) []int {
	var out []int
	for j := range ps {
		if j != i && m.Dist2(ps[i], ps[j]) <= r*r {
			out = append(out, j)
		}
	}
	return out
}

func TestNewGridValidation(t *testing.T) {
	m, err := geom.NewMetric(geom.MetricSquare, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewGrid(m, 0); err == nil {
		t.Error("want error for zero radius")
	}
	if _, err := NewGrid(m, -1); err == nil {
		t.Error("want error for negative radius")
	}
	g, err := NewGrid(m, 1e-9) // extreme radius must not explode memory
	if err != nil {
		t.Fatal(err)
	}
	if g.Radius() != 1e-9 {
		t.Error("Radius accessor mismatch")
	}
}

func TestGridMatchesBruteForce(t *testing.T) {
	tests := []struct {
		name   string
		kind   geom.MetricKind
		side   float64
		radius float64
		n      int
	}{
		{"square small radius", geom.MetricSquare, 10, 0.8, 300},
		{"square large radius", geom.MetricSquare, 10, 4.5, 200},
		{"square radius exceeds side", geom.MetricSquare, 10, 25, 60},
		{"torus small radius", geom.MetricTorus, 10, 0.8, 300},
		{"torus wrap radius", geom.MetricTorus, 10, 3, 150},
		{"single cell torus", geom.MetricTorus, 2, 1.9, 50},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g := mustGrid(t, tt.kind, tt.side, tt.radius)
			m, _ := geom.NewMetric(tt.kind, tt.side)
			ps := randomPositions(tt.n, tt.side, 42)
			g.Rebuild(ps)
			if g.Len() != tt.n {
				t.Fatalf("Len = %d, want %d", g.Len(), tt.n)
			}
			for i := 0; i < tt.n; i += 7 {
				got := g.Neighbors(i, nil)
				want := bruteNeighbors(m, ps, i, tt.radius)
				sort.Ints(got)
				sort.Ints(want)
				if len(got) != len(want) {
					t.Fatalf("node %d: got %d neighbors, want %d", i, len(got), len(want))
				}
				for k := range got {
					if got[k] != want[k] {
						t.Fatalf("node %d neighbor mismatch: %v vs %v", i, got, want)
					}
				}
			}
		})
	}
}

func TestGridNoDuplicates(t *testing.T) {
	// Wrapping window on a tiny grid is where duplicates would appear.
	g := mustGrid(t, geom.MetricTorus, 3, 1.4)
	ps := randomPositions(40, 3, 9)
	g.Rebuild(ps)
	for i := range ps {
		got := g.Neighbors(i, nil)
		seen := make(map[int]bool, len(got))
		for _, j := range got {
			if seen[j] {
				t.Fatalf("duplicate neighbor %d for node %d", j, i)
			}
			if j == i {
				t.Fatalf("node %d returned itself", i)
			}
			seen[j] = true
		}
	}
}

func TestForEachPairMatchesNeighbors(t *testing.T) {
	g := mustGrid(t, geom.MetricTorus, 10, 1.2)
	ps := randomPositions(200, 10, 3)
	g.Rebuild(ps)

	pairCount := make(map[[2]int]int)
	g.ForEachPair(func(i, j int) {
		if i >= j {
			t.Fatalf("ForEachPair order violated: (%d,%d)", i, j)
		}
		pairCount[[2]int{i, j}]++
	})
	for p, c := range pairCount {
		if c != 1 {
			t.Fatalf("pair %v visited %d times", p, c)
		}
	}
	// Degree sum must equal 2 × pair count.
	deg := 0
	for i := range ps {
		deg += len(g.Neighbors(i, nil))
	}
	if deg != 2*len(pairCount) {
		t.Errorf("degree sum %d != 2×pairs %d", deg, 2*len(pairCount))
	}
}

// TestForEachPairMatchesBruteForce cross-checks the CSR bucket walk
// against the O(N²) reference on both metrics, including a torus window
// that wraps and spans several cells in each direction.
func TestForEachPairMatchesBruteForce(t *testing.T) {
	tests := []struct {
		name   string
		kind   geom.MetricKind
		side   float64
		radius float64
		n      int
	}{
		{"square", geom.MetricSquare, 10, 1.1, 250},
		{"torus multi-cell span", geom.MetricTorus, 10, 2.7, 180},
		{"torus window covers grid", geom.MetricTorus, 4, 1.9, 90},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g := mustGrid(t, tt.kind, tt.side, tt.radius)
			m, _ := geom.NewMetric(tt.kind, tt.side)
			ps := randomPositions(tt.n, tt.side, 17)
			g.Rebuild(ps)
			got := make(map[[2]int]bool)
			g.ForEachPair(func(i, j int) {
				if i >= j {
					t.Fatalf("unordered pair (%d,%d)", i, j)
				}
				if got[[2]int{i, j}] {
					t.Fatalf("duplicate pair (%d,%d)", i, j)
				}
				got[[2]int{i, j}] = true
			})
			want := make(map[[2]int]bool)
			r2 := tt.radius * tt.radius
			for i := 0; i < tt.n; i++ {
				for j := i + 1; j < tt.n; j++ {
					if m.Dist2(ps[i], ps[j]) <= r2 {
						want[[2]int{i, j}] = true
					}
				}
			}
			if len(got) != len(want) {
				t.Fatalf("got %d pairs, want %d", len(got), len(want))
			}
			for p := range want {
				if !got[p] {
					t.Fatalf("missing pair %v", p)
				}
			}
		})
	}
}

// TestGridClampsOutOfRangePositions feeds positions outside [0, side)
// (mobility models keep nodes inside, but the grid must not index out of
// bounds if a caller does not): cell assignment clamps, and distance
// checks still decide every pair correctly.
func TestGridClampsOutOfRangePositions(t *testing.T) {
	const side = 10.0
	const radius = 1.5
	g := mustGrid(t, geom.MetricSquare, side, radius)
	m, _ := geom.NewMetric(geom.MetricSquare, side)
	ps := randomPositions(120, side, 23)
	// Push a band of nodes off the region on all four sides.
	for i := 0; i < 30; i++ {
		switch i % 4 {
		case 0:
			ps[i].X = -0.5 - float64(i)/40
		case 1:
			ps[i].X = side + 0.5 + float64(i)/40
		case 2:
			ps[i].Y = -0.5 - float64(i)/40
		default:
			ps[i].Y = side + 0.5 + float64(i)/40
		}
	}
	g.Rebuild(ps) // must not panic on out-of-range cells
	for i := range ps {
		got := g.Neighbors(i, nil)
		want := bruteNeighbors(m, ps, i, radius)
		sort.Ints(got)
		sort.Ints(want)
		if len(got) != len(want) {
			t.Fatalf("node %d: got %d neighbors, want %d", i, len(got), len(want))
		}
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("node %d neighbor mismatch: %v vs %v", i, got, want)
			}
		}
	}
}

func TestRebuildReusesBuffers(t *testing.T) {
	g := mustGrid(t, geom.MetricSquare, 10, 1)
	ps := randomPositions(100, 10, 1)
	g.Rebuild(ps)
	before := g.Neighbors(0, nil)
	g.Rebuild(ps) // identical rebuild must give identical answers
	after := g.Neighbors(0, nil)
	if len(before) != len(after) {
		t.Fatalf("rebuild changed neighbor count: %d vs %d", len(before), len(after))
	}
	// Shrinking rebuild must not retain stale entries.
	g.Rebuild(ps[:10])
	if g.Len() != 10 {
		t.Fatalf("Len after shrink = %d", g.Len())
	}
	for i := 0; i < 10; i++ {
		for _, j := range g.Neighbors(i, nil) {
			if j >= 10 {
				t.Fatalf("stale index %d returned after shrink", j)
			}
		}
	}
}

func TestNeighborsBufferAppend(t *testing.T) {
	g := mustGrid(t, geom.MetricSquare, 10, 2)
	ps := randomPositions(50, 10, 5)
	g.Rebuild(ps)
	buf := make([]int, 0, 64)
	a := g.Neighbors(3, buf)
	b := g.Neighbors(3, a[:0])
	if len(a) != len(b) {
		t.Fatalf("buffer reuse changed result: %d vs %d", len(a), len(b))
	}
}
