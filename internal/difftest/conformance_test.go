package difftest

import (
	"math"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/netsim"
)

// conformanceNet is the deployment the statistical gates run on: a
// mid-density point of the paper's parameter space (d ≈ 12) where
// Figures 1–3 land, with the same v/a and r/a scales the figure sweeps
// use.
var conformanceNet = core.Network{N: 200, R: 1.2, V: 0.05, Density: 3}

// measured bundles per-seed accumulators of the quantities the gates
// check.
type measured struct {
	hello, cluster, route    metrics.Accumulator
	boundH, boundC, boundR   metrics.Accumulator
	headRatio, deg, linkRate metrics.Accumulator
}

// measureSeeds runs the standard measurement pipeline over independent
// seeds, evaluating the analysis at each run's *measured* head ratio —
// the paper's methodology ("P for LID is measured in real time during
// the simulation"), and the same convention the figure drivers use.
func measureSeeds(t *testing.T, seeds []uint64) measured {
	t.Helper()
	var acc measured
	for _, seed := range seeds {
		opts := experiments.DefaultOptions()
		opts.Seed = seed
		opts.TargetEvents = 6_000
		opts.Workers = 1
		m, err := experiments.MeasureRates(conformanceNet, opts)
		if err != nil {
			t.Fatal(err)
		}
		bounds, err := conformanceNet.ControlRates(m.HeadRatio)
		if err != nil {
			t.Fatal(err)
		}
		acc.hello.Add(m.FHello)
		acc.cluster.Add(m.FCluster)
		acc.route.Add(m.FRoute)
		acc.boundH.Add(bounds.Hello)
		acc.boundC.Add(bounds.Cluster)
		acc.boundR.Add(bounds.Route)
		acc.headRatio.Add(m.HeadRatio)
		acc.deg.Add(m.MeanDegree)
		acc.linkRate.Add(m.LinkChangeRate)
	}
	return acc
}

// TestRatesConformToPaperBounds is the statistical gate for Figures
// 1–3.
//
// For HELLO and CLUSTER the simulated protocols are the idealized
// event-driven ones the lower bound models, so simulation and analysis
// estimate the same quantity: the gate is a two-sided agreement band.
// The repository's own published figures show the simulation up to
// ~14% below the analysis at dense operating points (square-border
// degree model error plus time discretization; see results/fig3.csv),
// so the band is [0.80, 1.20]×bound — a real accounting regression
// moves these rates by integer factors.
//
// For ROUTE the simulated protocol genuinely does more work than the
// bound models (a table round per intra-cluster change, not only
// star breaks), so the gate is one-sided: the simulated rate must sit
// at or above the closed-form lower bound — with CI95 headroom — as
// the paper's "lower bound" claim demands.
func TestRatesConformToPaperBounds(t *testing.T) {
	seeds := []uint64{1, 2, 3}
	if testing.Short() {
		seeds = seeds[:2]
	}
	acc := measureSeeds(t, seeds)

	band := func(name string, sim, bound metrics.Accumulator) {
		ratio := sim.Mean() / bound.Mean()
		t.Logf("%s: simulated %.4f ± %.4f, analysis %.4f (sim/analysis = %.3f)",
			name, sim.Mean(), sim.CI95(), bound.Mean(), ratio)
		if ratio < 0.80 || ratio > 1.20 {
			t.Errorf("%s rate %.4f is outside the [0.80, 1.20] agreement band of the analysis %.4f",
				name, sim.Mean(), bound.Mean())
		}
	}
	band("hello", acc.hello, acc.boundH)
	band("cluster", acc.cluster, acc.boundC)

	routeSim, routeBound := acc.route, acc.boundR
	t.Logf("route: simulated %.4f ± %.4f, analysis lower bound %.4f",
		routeSim.Mean(), routeSim.CI95(), routeBound.Mean())
	if routeSim.Mean()+routeSim.CI95() < routeBound.Mean() {
		t.Errorf("route rate %.4f ± %.4f fell below the paper's lower bound %.4f",
			routeSim.Mean(), routeSim.CI95(), routeBound.Mean())
	}

	// Claim 2: the per-node link change rate is λ = 16dv/π²r. Evaluate
	// it at the *measured* degree so the check isolates the
	// link-dynamics model from the neighbor-count model.
	predicted := 16 * acc.deg.Mean() * conformanceNet.V / (math.Pi * math.Pi * conformanceNet.R)
	if rel := math.Abs(acc.linkRate.Mean()/predicted - 1); rel > 0.15 {
		t.Errorf("link change rate %.4f deviates %.1f%% from Claim 2's λ=16dv/π²r = %.4f",
			acc.linkRate.Mean(), 100*rel, predicted)
	}
}

// TestFormationHeadRatioConformsToEqn17: P ≈ 1/√(d+1) (Eqn 17)
// describes the head ratio of a fresh LID formation — the maintained
// ratio drifts well below it as clusters coarsen (see
// results/head_ratio_timeline.csv) — so the gate forms clusters on
// independent static uniform placements, exactly the Figure 5 protocol,
// and compares against Eqn 17 at the measured mean degree. The point
// sits at r/a = 0.03, deep in the sparse regime: the repository's own
// Figure 5(b) data shows the independence approximation behind Eqn (16)
// within ~1% of simulation there but already 18% high at r/a = 0.05
// (see results/fig5b.csv), so a denser operating point would gate on
// the approximation's known bias rather than on the simulator.
func TestFormationHeadRatioConformsToEqn17(t *testing.T) {
	reps := 6
	if testing.Short() {
		reps = 4
	}
	var ratio, deg metrics.Accumulator
	for rep := 0; rep < reps; rep++ {
		sim, err := netsim.New(netsim.Config{
			N: 400, Side: 10, Range: 0.3, Dt: 1, Seed: 1000 + uint64(rep),
		})
		if err != nil {
			t.Fatal(err)
		}
		a, err := cluster.Form(sim, cluster.LID{})
		if err != nil {
			t.Fatal(err)
		}
		ratio.Add(a.HeadRatio())
		deg.Add(sim.MeanDegree())
	}
	want := 1 / math.Sqrt(deg.Mean()+1)
	got := ratio.Mean()
	tol := math.Max(3*ratio.CI95(), 0.12*want)
	t.Logf("formation head ratio: simulated %.4f ± %.4f over %d placements, 1/√(d+1) = %.4f at measured d = %.2f (tolerance %.4f)",
		got, ratio.CI95(), reps, want, deg.Mean(), tol)
	if math.Abs(got-want) > tol {
		t.Errorf("formation head ratio %.4f is outside tolerance %.4f of 1/√(d+1) = %.4f", got, tol, want)
	}
}
