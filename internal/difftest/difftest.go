// Package difftest runs three independently built engines in lockstep
// over one scenario and reports the first divergence: the brute-force
// refsim oracle, the optimized tick engine (netsim), and the
// event-driven core (eventsim). All three are built from the same
// netsim.Config with identical protocol stacks (HELLO discovery, LID
// cluster maintenance, hybrid routing), so after every tick the harness
// can demand exact equality of positions, neighbor lists, link events,
// message deliveries, tallies, and cluster state. A mismatch between
// refsim and netsim points at a bug in the optimized data structures
// (CSR adjacency, merge-walk diffing, ring queue); a mismatch between
// netsim and eventsim points at an unsound skip certificate (crossing
// prediction, Waker schedule, phase promotion).
package difftest

import (
	"fmt"
	"math"
	"slices"

	"repro/internal/cluster"
	"repro/internal/eventsim"
	"repro/internal/faults"
	"repro/internal/geom"
	"repro/internal/mobility"
	"repro/internal/netsim"
	"repro/internal/refsim"
	"repro/internal/routing"
)

// Scenario describes one lockstep run.
type Scenario struct {
	// Name labels the scenario in divergence reports.
	Name string
	// Cfg is the shared engine configuration. Its Model and Medium
	// fields are ignored; NewModel and Faults supply per-engine
	// instances, because mobility models and fault injectors carry
	// internal state that must not be shared across the two engines.
	Cfg netsim.Config
	// NewModel builds a fresh mobility model. nil selects Static.
	NewModel func() mobility.Model
	// Faults, when non-nil, gives each engine its own deterministic
	// fault injector built from this config.
	Faults *faults.Config
	// Handshake switches cluster maintenance from the instant oracle to
	// the soft-state JOIN/ACK exchange with retries.
	Handshake bool
	// PeriodicHello uses the conventional periodic beacon protocol
	// instead of the event-driven lower bound.
	PeriodicHello bool
	// Ticks is the number of lockstep steps after Start.
	Ticks int
}

// engine is the surface shared by netsim.Sim and refsim.Sim that the
// harness drives and inspects.
type engine interface {
	netsim.Env
	Register(ps ...netsim.Protocol) error
	Start() error
	Step() error
	Position(netsim.NodeID) geom.Vec2
	Tallies() netsim.Tallies
	Delivered() int64
	Dropped() int64
	MeanDegree() float64
}

var (
	_ engine = (*netsim.Sim)(nil)
	_ engine = (*refsim.Sim)(nil)
	_ engine = (*eventsim.Sim)(nil)
)

// engineKind selects which of the three engines a stack wraps.
type engineKind int

const (
	engineRef engineKind = iota
	engineTick
	engineEvent
)

// label names the engine in divergence reports.
func (k engineKind) label() string {
	switch k {
	case engineRef:
		return "reference"
	case engineTick:
		return "optimized"
	default:
		return "event"
	}
}

// delivery is one point delivery observed by the recorder: message ×
// receiving node, in delivery order.
type delivery struct {
	Rcv, From netsim.NodeID
	Kind      netsim.MsgKind
	Seq       uint32
	Bits      float64
	Border    bool
}

// recorder is a passive protocol that captures the per-tick link-event
// and delivery streams, so the harness can compare them element by
// element (the engines do not expose their event slices uniformly).
type recorder struct {
	events     []netsim.LinkEvent
	deliveries []delivery
}

func (r *recorder) Name() string           { return "difftest/recorder" }
func (r *recorder) Start(netsim.Env) error { return nil }
func (r *recorder) OnLinkEvent(ev netsim.LinkEvent) {
	r.events = append(r.events, ev)
}
func (r *recorder) OnMessage(rcv netsim.NodeID, msg netsim.Message) {
	r.deliveries = append(r.deliveries, delivery{
		Rcv: rcv, From: msg.From, Kind: msg.Kind, Seq: msg.Seq, Bits: msg.Bits, Border: msg.Border,
	})
}
func (r *recorder) OnTick(float64) {}

// NextWake implements netsim.Waker: OnTick is empty, so the recorder
// never needs a timer wake. Without this the event core would have to
// run the protocol phase every tick and the lockstep would stop
// exercising the skip paths it exists to validate.
func (r *recorder) NextWake(float64) float64 { return math.Inf(1) }

func (r *recorder) reset() {
	r.events = r.events[:0]
	r.deliveries = r.deliveries[:0]
}

// stack is one engine with its protocol instances.
type stack struct {
	kind  engineKind
	eng   engine
	ev    *eventsim.Sim // set when kind == engineEvent
	inj   *faults.Injector
	rec   *recorder
	hello *routing.Hello
	maint *cluster.Maintainer
	route *routing.Hybrid
}

// build assembles one engine with a fresh protocol stack for the
// scenario.
func build(s Scenario, kind engineKind) (*stack, error) {
	cfg := s.Cfg
	if s.NewModel != nil {
		cfg.Model = s.NewModel()
	} else {
		cfg.Model = mobility.Static{}
	}
	st := &stack{kind: kind, rec: &recorder{}}
	if s.Faults != nil {
		inj, err := faults.New(*s.Faults)
		if err != nil {
			return nil, err
		}
		st.inj = inj
		cfg.Medium = inj
	}
	var err error
	if s.PeriodicHello {
		st.hello, err = routing.NewPeriodicHello(64, 10*cfg.Dt)
	} else {
		st.hello, err = routing.NewHello(64)
	}
	if err != nil {
		return nil, err
	}
	if st.maint, err = cluster.NewMaintainer(cluster.LID{}, 128); err != nil {
		return nil, err
	}
	if s.Handshake {
		if err := st.maint.EnableHandshake(3); err != nil {
			return nil, err
		}
	}
	if st.route, err = routing.NewHybrid(st.maint, routing.DefaultSizes); err != nil {
		return nil, err
	}
	switch kind {
	case engineTick:
		st.eng, err = netsim.New(cfg)
	case engineEvent:
		st.ev, err = eventsim.New(cfg)
		st.eng = st.ev
	default:
		st.eng, err = refsim.New(cfg)
	}
	if err != nil {
		return nil, err
	}
	// Same registration order as the experiment drivers: clustering
	// settles each event before routing classifies it. The recorder goes
	// first so it observes the streams unperturbed.
	if err := st.eng.Register(st.rec, st.hello, st.maint, st.route); err != nil {
		return nil, err
	}
	return st, nil
}

// Lockstep builds all three engines for the scenario, steps them
// together for Scenario.Ticks ticks and returns a descriptive error at
// the first divergence (nil when the engines agree throughout).
func Lockstep(s Scenario) error {
	_, err := LockstepObserved(s)
	return err
}

// LockstepObserved is Lockstep plus the event core's execution
// counters, so callers can assert the run actually exercised the skip
// fast paths (a lockstep that never skips proves nothing about the
// event schedule).
func LockstepObserved(s Scenario) (eventsim.Stats, error) {
	var none eventsim.Stats
	if s.Ticks <= 0 {
		return none, fmt.Errorf("difftest %q: Ticks must be positive, got %d", s.Name, s.Ticks)
	}
	stacks := make([]*stack, 3)
	for i, kind := range []engineKind{engineRef, engineTick, engineEvent} {
		st, err := build(s, kind)
		if err != nil {
			return none, fmt.Errorf("difftest %q: build %s: %w", s.Name, kind.label(), err)
		}
		stacks[i] = st
	}
	ref, tickSt, evSt := stacks[0], stacks[1], stacks[2]
	for _, st := range stacks {
		if err := st.eng.Start(); err != nil {
			return none, fmt.Errorf("difftest %q: start %s: %w", s.Name, st.kind.label(), err)
		}
	}
	compareAll := func(tick int) error {
		if err := compare(s, tick, ref, tickSt); err != nil {
			return err
		}
		return compare(s, tick, tickSt, evSt)
	}
	if err := compareAll(0); err != nil {
		return none, err
	}
	for tick := 1; tick <= s.Ticks; tick++ {
		var errs [3]error
		for i, st := range stacks {
			st.rec.reset()
			errs[i] = st.eng.Step()
		}
		for i := 1; i < 3; i++ {
			if (errs[0] == nil) != (errs[i] == nil) {
				return none, fmt.Errorf("difftest %q: tick %d: step outcome diverged: %s=%v %s=%v",
					s.Name, tick, stacks[0].kind.label(), errs[0], stacks[i].kind.label(), errs[i])
			}
		}
		if errs[0] != nil {
			return none, fmt.Errorf("difftest %q: tick %d: all engines failed: %w", s.Name, tick, errs[0])
		}
		if err := compareAll(tick); err != nil {
			return none, err
		}
	}
	return evSt.ev.Stats(), nil
}

// compare demands exact equality of every observable the two stacks
// expose after the same tick. Checks are ordered upstream-first
// (positions before adjacency before events before protocol state) so
// the reported divergence names the earliest broken layer, not a
// downstream symptom.
func compare(s Scenario, tick int, ref, opt *stack) error {
	la, lb := ref.kind.label(), opt.kind.label()
	fail := func(format string, args ...any) error {
		return fmt.Errorf("difftest %q: tick %d: %s", s.Name, tick, fmt.Sprintf(format, args...))
	}
	n := s.Cfg.N
	for i := 0; i < n; i++ {
		id := netsim.NodeID(i)
		if ref.eng.Position(id) != opt.eng.Position(id) {
			return fail("position of node %d: %s %v, %s %v",
				i, la, ref.eng.Position(id), lb, opt.eng.Position(id))
		}
	}
	for i := 0; i < n; i++ {
		id := netsim.NodeID(i)
		if !slices.Equal(ref.eng.Neighbors(id), opt.eng.Neighbors(id)) {
			return fail("neighbors of node %d: %s %v, %s %v",
				i, la, ref.eng.Neighbors(id), lb, opt.eng.Neighbors(id))
		}
	}
	if !slices.Equal(ref.rec.events, opt.rec.events) {
		return fail("link events: %s %v, %s %v", la, ref.rec.events, lb, opt.rec.events)
	}
	if !slices.Equal(ref.rec.deliveries, opt.rec.deliveries) {
		return fail("delivery stream: %s has %d deliveries, %s %d; %s %v, %s %v",
			la, len(ref.rec.deliveries), lb, len(opt.rec.deliveries), la, ref.rec.deliveries, lb, opt.rec.deliveries)
	}
	if ref.eng.Tallies() != opt.eng.Tallies() {
		return fail("tallies: %s %+v, %s %+v", la, ref.eng.Tallies(), lb, opt.eng.Tallies())
	}
	if ref.eng.Delivered() != opt.eng.Delivered() || ref.eng.Dropped() != opt.eng.Dropped() {
		return fail("delivery counters: %s %d/%d, %s %d/%d",
			la, ref.eng.Delivered(), ref.eng.Dropped(), lb, opt.eng.Delivered(), opt.eng.Dropped())
	}
	for i := 0; i < n; i++ {
		id := netsim.NodeID(i)
		if ref.maint.RoleOf(id) != opt.maint.RoleOf(id) || ref.maint.HeadOf(id) != opt.maint.HeadOf(id) {
			return fail("cluster state of node %d: %s %v/head %d, %s %v/head %d",
				i, la, ref.maint.RoleOf(id), ref.maint.HeadOf(id), lb, opt.maint.RoleOf(id), opt.maint.HeadOf(id))
		}
	}
	if ref.maint.Stats() != opt.maint.Stats() {
		return fail("cluster cause stats: %s %+v, %s %+v", la, ref.maint.Stats(), lb, opt.maint.Stats())
	}
	if ref.route.Stats() != opt.route.Stats() {
		return fail("routing stats: %s %+v, %s %+v", la, ref.route.Stats(), lb, opt.route.Stats())
	}
	for i := 0; i < n; i++ {
		id := netsim.NodeID(i)
		if ref.hello.TableSize(id) != opt.hello.TableSize(id) {
			return fail("hello table of node %d: %s %d entries, %s %d",
				i, la, ref.hello.TableSize(id), lb, opt.hello.TableSize(id))
		}
	}
	return checkClusterOracle(s, ref, opt, fail)
}

// checkClusterOracle re-derives clustering ground truth from the
// reference topology: a fresh LID formation must satisfy P1/P2 on every
// tick, and — in oracle maintenance mode with no pending handshakes and
// no faults — the maintained assignment must satisfy them too.
func checkClusterOracle(s Scenario, ref, opt *stack, fail func(string, ...any) error) error {
	fresh, err := cluster.Form(ref.eng, cluster.LID{})
	if err != nil {
		return fail("fresh LID formation: %v", err)
	}
	if err := fresh.Check(ref.eng); err != nil {
		return fail("fresh LID formation violates P1/P2 on reference topology: %v", err)
	}
	if s.Faults == nil && !s.Handshake {
		if err := opt.maint.CheckInvariants(); err != nil {
			return fail("maintained clustering violates P1/P2 under ideal medium: %v", err)
		}
	}
	return nil
}
