// Package difftest runs the optimized netsim engine and the brute-force
// refsim oracle in lockstep over one scenario and reports the first
// divergence. Both engines are built from the same netsim.Config with
// identical protocol stacks (HELLO discovery, LID cluster maintenance,
// hybrid routing), so after every tick the harness can demand exact
// equality of positions, neighbor lists, link events, message
// deliveries, tallies, and cluster state. Any mismatch points at a bug
// in the optimized data structures (CSR adjacency, merge-walk diffing,
// ring queue) the reference engine deliberately avoids.
package difftest

import (
	"fmt"
	"slices"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/geom"
	"repro/internal/mobility"
	"repro/internal/netsim"
	"repro/internal/refsim"
	"repro/internal/routing"
)

// Scenario describes one lockstep run.
type Scenario struct {
	// Name labels the scenario in divergence reports.
	Name string
	// Cfg is the shared engine configuration. Its Model and Medium
	// fields are ignored; NewModel and Faults supply per-engine
	// instances, because mobility models and fault injectors carry
	// internal state that must not be shared across the two engines.
	Cfg netsim.Config
	// NewModel builds a fresh mobility model. nil selects Static.
	NewModel func() mobility.Model
	// Faults, when non-nil, gives each engine its own deterministic
	// fault injector built from this config.
	Faults *faults.Config
	// Handshake switches cluster maintenance from the instant oracle to
	// the soft-state JOIN/ACK exchange with retries.
	Handshake bool
	// PeriodicHello uses the conventional periodic beacon protocol
	// instead of the event-driven lower bound.
	PeriodicHello bool
	// Ticks is the number of lockstep steps after Start.
	Ticks int
}

// engine is the surface shared by netsim.Sim and refsim.Sim that the
// harness drives and inspects.
type engine interface {
	netsim.Env
	Register(ps ...netsim.Protocol) error
	Start() error
	Step() error
	Position(netsim.NodeID) geom.Vec2
	Tallies() netsim.Tallies
	Delivered() int64
	Dropped() int64
	MeanDegree() float64
}

var (
	_ engine = (*netsim.Sim)(nil)
	_ engine = (*refsim.Sim)(nil)
)

// delivery is one point delivery observed by the recorder: message ×
// receiving node, in delivery order.
type delivery struct {
	Rcv, From netsim.NodeID
	Kind      netsim.MsgKind
	Seq       uint32
	Bits      float64
	Border    bool
}

// recorder is a passive protocol that captures the per-tick link-event
// and delivery streams, so the harness can compare them element by
// element (the engines do not expose their event slices uniformly).
type recorder struct {
	events     []netsim.LinkEvent
	deliveries []delivery
}

func (r *recorder) Name() string           { return "difftest/recorder" }
func (r *recorder) Start(netsim.Env) error { return nil }
func (r *recorder) OnLinkEvent(ev netsim.LinkEvent) {
	r.events = append(r.events, ev)
}
func (r *recorder) OnMessage(rcv netsim.NodeID, msg netsim.Message) {
	r.deliveries = append(r.deliveries, delivery{
		Rcv: rcv, From: msg.From, Kind: msg.Kind, Seq: msg.Seq, Bits: msg.Bits, Border: msg.Border,
	})
}
func (r *recorder) OnTick(float64) {}

func (r *recorder) reset() {
	r.events = r.events[:0]
	r.deliveries = r.deliveries[:0]
}

// stack is one engine with its protocol instances.
type stack struct {
	eng   engine
	inj   *faults.Injector
	rec   *recorder
	hello *routing.Hello
	maint *cluster.Maintainer
	route *routing.Hybrid
}

// build assembles one engine (optimized or reference) with a fresh
// protocol stack for the scenario.
func build(s Scenario, optimized bool) (*stack, error) {
	cfg := s.Cfg
	if s.NewModel != nil {
		cfg.Model = s.NewModel()
	} else {
		cfg.Model = mobility.Static{}
	}
	st := &stack{rec: &recorder{}}
	if s.Faults != nil {
		inj, err := faults.New(*s.Faults)
		if err != nil {
			return nil, err
		}
		st.inj = inj
		cfg.Medium = inj
	}
	var err error
	if s.PeriodicHello {
		st.hello, err = routing.NewPeriodicHello(64, 10*cfg.Dt)
	} else {
		st.hello, err = routing.NewHello(64)
	}
	if err != nil {
		return nil, err
	}
	if st.maint, err = cluster.NewMaintainer(cluster.LID{}, 128); err != nil {
		return nil, err
	}
	if s.Handshake {
		if err := st.maint.EnableHandshake(3); err != nil {
			return nil, err
		}
	}
	if st.route, err = routing.NewHybrid(st.maint, routing.DefaultSizes); err != nil {
		return nil, err
	}
	if optimized {
		st.eng, err = netsim.New(cfg)
	} else {
		st.eng, err = refsim.New(cfg)
	}
	if err != nil {
		return nil, err
	}
	// Same registration order as the experiment drivers: clustering
	// settles each event before routing classifies it. The recorder goes
	// first so it observes the streams unperturbed.
	if err := st.eng.Register(st.rec, st.hello, st.maint, st.route); err != nil {
		return nil, err
	}
	return st, nil
}

// Lockstep builds both engines for the scenario, steps them together
// for Scenario.Ticks ticks and returns a descriptive error at the first
// divergence (nil when the engines agree throughout).
func Lockstep(s Scenario) error {
	if s.Ticks <= 0 {
		return fmt.Errorf("difftest %q: Ticks must be positive, got %d", s.Name, s.Ticks)
	}
	ref, err := build(s, false)
	if err != nil {
		return fmt.Errorf("difftest %q: build reference: %w", s.Name, err)
	}
	opt, err := build(s, true)
	if err != nil {
		return fmt.Errorf("difftest %q: build optimized: %w", s.Name, err)
	}
	if err := ref.eng.Start(); err != nil {
		return fmt.Errorf("difftest %q: start reference: %w", s.Name, err)
	}
	if err := opt.eng.Start(); err != nil {
		return fmt.Errorf("difftest %q: start optimized: %w", s.Name, err)
	}
	if err := compare(s, 0, ref, opt); err != nil {
		return err
	}
	for tick := 1; tick <= s.Ticks; tick++ {
		ref.rec.reset()
		opt.rec.reset()
		errRef := ref.eng.Step()
		errOpt := opt.eng.Step()
		if (errRef == nil) != (errOpt == nil) {
			return fmt.Errorf("difftest %q: tick %d: step outcome diverged: reference=%v optimized=%v",
				s.Name, tick, errRef, errOpt)
		}
		if errRef != nil {
			return fmt.Errorf("difftest %q: tick %d: both engines failed: %w", s.Name, tick, errRef)
		}
		if err := compare(s, tick, ref, opt); err != nil {
			return err
		}
	}
	return nil
}

// compare demands exact equality of every observable the two stacks
// expose after the same tick. Checks are ordered upstream-first
// (positions before adjacency before events before protocol state) so
// the reported divergence names the earliest broken layer, not a
// downstream symptom.
func compare(s Scenario, tick int, ref, opt *stack) error {
	fail := func(format string, args ...any) error {
		return fmt.Errorf("difftest %q: tick %d: %s", s.Name, tick, fmt.Sprintf(format, args...))
	}
	n := s.Cfg.N
	for i := 0; i < n; i++ {
		id := netsim.NodeID(i)
		if ref.eng.Position(id) != opt.eng.Position(id) {
			return fail("position of node %d: reference %v, optimized %v",
				i, ref.eng.Position(id), opt.eng.Position(id))
		}
	}
	for i := 0; i < n; i++ {
		id := netsim.NodeID(i)
		if !slices.Equal(ref.eng.Neighbors(id), opt.eng.Neighbors(id)) {
			return fail("neighbors of node %d: reference %v, optimized %v",
				i, ref.eng.Neighbors(id), opt.eng.Neighbors(id))
		}
	}
	if !slices.Equal(ref.rec.events, opt.rec.events) {
		return fail("link events: reference %v, optimized %v", ref.rec.events, opt.rec.events)
	}
	if !slices.Equal(ref.rec.deliveries, opt.rec.deliveries) {
		return fail("delivery stream: reference has %d deliveries, optimized %d; reference %v, optimized %v",
			len(ref.rec.deliveries), len(opt.rec.deliveries), ref.rec.deliveries, opt.rec.deliveries)
	}
	if ref.eng.Tallies() != opt.eng.Tallies() {
		return fail("tallies: reference %+v, optimized %+v", ref.eng.Tallies(), opt.eng.Tallies())
	}
	if ref.eng.Delivered() != opt.eng.Delivered() || ref.eng.Dropped() != opt.eng.Dropped() {
		return fail("delivery counters: reference %d/%d, optimized %d/%d",
			ref.eng.Delivered(), ref.eng.Dropped(), opt.eng.Delivered(), opt.eng.Dropped())
	}
	for i := 0; i < n; i++ {
		id := netsim.NodeID(i)
		if ref.maint.RoleOf(id) != opt.maint.RoleOf(id) || ref.maint.HeadOf(id) != opt.maint.HeadOf(id) {
			return fail("cluster state of node %d: reference %v/head %d, optimized %v/head %d",
				i, ref.maint.RoleOf(id), ref.maint.HeadOf(id), opt.maint.RoleOf(id), opt.maint.HeadOf(id))
		}
	}
	if ref.maint.Stats() != opt.maint.Stats() {
		return fail("cluster cause stats: reference %+v, optimized %+v", ref.maint.Stats(), opt.maint.Stats())
	}
	if ref.route.Stats() != opt.route.Stats() {
		return fail("routing stats: reference %+v, optimized %+v", ref.route.Stats(), opt.route.Stats())
	}
	for i := 0; i < n; i++ {
		id := netsim.NodeID(i)
		if ref.hello.TableSize(id) != opt.hello.TableSize(id) {
			return fail("hello table of node %d: reference %d entries, optimized %d",
				i, ref.hello.TableSize(id), opt.hello.TableSize(id))
		}
	}
	return checkClusterOracle(s, ref, opt, fail)
}

// checkClusterOracle re-derives clustering ground truth from the
// reference topology: a fresh LID formation must satisfy P1/P2 on every
// tick, and — in oracle maintenance mode with no pending handshakes and
// no faults — the maintained assignment must satisfy them too.
func checkClusterOracle(s Scenario, ref, opt *stack, fail func(string, ...any) error) error {
	fresh, err := cluster.Form(ref.eng, cluster.LID{})
	if err != nil {
		return fail("fresh LID formation: %v", err)
	}
	if err := fresh.Check(ref.eng); err != nil {
		return fail("fresh LID formation violates P1/P2 on reference topology: %v", err)
	}
	if s.Faults == nil && !s.Handshake {
		if err := opt.maint.CheckInvariants(); err != nil {
			return fail("maintained clustering violates P1/P2 under ideal medium: %v", err)
		}
	}
	return nil
}
