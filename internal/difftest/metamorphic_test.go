package difftest

import (
	"math"
	"math/rand"
	"slices"
	"testing"

	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/geom"
	"repro/internal/mobility"
	"repro/internal/netsim"
	"repro/internal/routing"
)

// translate decorates a mobility model by shifting every initial
// position by a fixed offset (wrapped into the region). On the torus the
// dynamics are translation-invariant, so the whole simulation — link
// events, cluster churn, traffic — must be unchanged.
type translate struct {
	inner mobility.Model
	delta geom.Vec2
}

func (m translate) Name() string { return m.inner.Name() + "+translate" }

func (m translate) Init(n int, metric geom.Metric, rng *rand.Rand) (*mobility.Population, error) {
	p, err := m.inner.Init(n, metric, rng)
	if err != nil {
		return nil, err
	}
	for i := range p.Pos {
		p.Pos[i], _ = metric.Wrap(p.Pos[i].Add(m.delta))
	}
	return p, nil
}

func (m translate) Step(p *mobility.Population, metric geom.Metric, dt float64, rng *rand.Rand) {
	m.inner.Step(p, metric, dt, rng)
}

// relabel decorates a mobility model by permuting which node gets which
// initial state. For models whose Step draws nothing from the rng
// (Static, BCV) the trajectories permute exactly, so every aggregate
// that ignores identities — link-event counts, HELLO traffic, delivery
// totals, the degree multiset — must be unchanged.
type relabel struct {
	inner mobility.Model
	perm  []int
}

func (m relabel) Name() string { return m.inner.Name() + "+relabel" }

func (m relabel) Init(n int, metric geom.Metric, rng *rand.Rand) (*mobility.Population, error) {
	p, err := m.inner.Init(n, metric, rng)
	if err != nil {
		return nil, err
	}
	p.Permute(m.perm)
	return p, nil
}

func (m relabel) Step(p *mobility.Population, metric geom.Metric, dt float64, rng *rand.Rand) {
	m.inner.Step(p, metric, dt, rng)
}

// runFullStack runs the optimized engine with the standard protocol
// stack for ticks steps and returns the stack for inspection.
func runFullStack(t *testing.T, cfg netsim.Config, ticks int) *stack {
	t.Helper()
	st, err := build(Scenario{Name: "metamorphic", Cfg: cfg, NewModel: func() mobility.Model { return cfg.Model }}, engineTick)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ticks; i++ {
		if err := st.eng.Step(); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// runHelloOnly runs the optimized engine with only the event-driven
// HELLO protocol and returns final tallies plus the sorted degree
// multiset.
func runHelloOnly(t *testing.T, cfg netsim.Config, ticks int) (netsim.Tallies, []int) {
	t.Helper()
	hello, err := routing.NewHello(64)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := netsim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Register(hello); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ticks; i++ {
		if err := sim.Step(); err != nil {
			t.Fatal(err)
		}
	}
	degrees := make([]int, cfg.N)
	for i := range degrees {
		degrees[i] = sim.Degree(netsim.NodeID(i))
	}
	slices.Sort(degrees)
	return sim.Tallies(), degrees
}

// borderMerged projects tallies onto the translation-invariant
// quantities: per-kind totals, total link generations and breaks, and
// the delivery counters. The border/non-border split is deliberately
// excluded — the Wrapped flag marks crossings of the coordinate seam,
// and a translation moves the seam relative to the trajectories, so on
// the torus only the merged totals are invariant.
func borderMerged(w netsim.Tallies) [12]float64 {
	return [12]float64{
		w.Of(netsim.MsgHello).Msgs, w.Of(netsim.MsgCluster).Msgs,
		w.Of(netsim.MsgRoute).Msgs, w.Of(netsim.MsgRouteDiscovery).Msgs,
		w.LinkGen + w.BorderGen, w.LinkBrk + w.BorderBrk,
		w.Invalid, w.Delivered, w.Dropped, w.Suppressed,
		w.Overflow, w.Duplicated,
	}
}

// lockstepFaultPair builds two optimized stacks that differ only in
// their fault wiring and demands exact equality of every observable
// (positions, neighbors, link events, delivery stream with sequence
// numbers, tallies, cluster and routing state) after every tick, via
// the same compare the differential harness uses.
func lockstepFaultPair(t *testing.T, label string, cfg netsim.Config, fa, fb *faults.Config, handshake bool, ticks int) {
	t.Helper()
	newStack := func(fc *faults.Config) *stack {
		s := Scenario{
			Name: label, Cfg: cfg,
			NewModel:  func() mobility.Model { return mobility.BCV{Speed: 0.06} },
			Faults:    fc,
			Handshake: handshake,
		}
		st, err := build(s, engineTick)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.eng.Start(); err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := newStack(fa), newStack(fb)
	s := Scenario{Name: label, Cfg: cfg, Faults: fa, Handshake: handshake}
	if err := compare(s, 0, a, b); err != nil {
		t.Fatal(err)
	}
	for tick := 1; tick <= ticks; tick++ {
		a.rec.reset()
		b.rec.reset()
		if err := a.eng.Step(); err != nil {
			t.Fatal(err)
		}
		if err := b.eng.Step(); err != nil {
			t.Fatal(err)
		}
		if err := compare(s, tick, a, b); err != nil {
			t.Fatal(err)
		}
	}
}

// TestZeroPathologyByteIdentical pins the delivery pipeline's zero
// cost: an injector whose delay, jitter, duplication and partition
// parameters are all zero must be byte-identical to the paths that
// predate the pipeline — the nil-medium ideal engine and the loss-only
// injector — so enabling the new fault dimensions at zero strength can
// never perturb a published figure.
func TestZeroPathologyByteIdentical(t *testing.T) {
	cfg := netsim.Config{
		N: 36, Side: 8, Range: 1.5, Dt: 0.5, Seed: 11,
		Metric: geom.MetricTorus,
	}
	t.Run("zero-config-vs-nil-medium", func(t *testing.T) {
		lockstepFaultPair(t, "zero-vs-nil", cfg, nil, &faults.Config{}, false, 80)
	})
	t.Run("loss-only-vs-zero-pipeline", func(t *testing.T) {
		lossOnly := &faults.Config{Loss: 0.2}
		zeroPipeline := &faults.Config{
			Loss:      0.2,
			Delay:     faults.Delay{BaseTicks: 0, JitterTicks: 0},
			DupProb:   0,
			Partition: faults.Partition{PeriodTicks: 0, DurationTicks: 0},
		}
		lockstepFaultPair(t, "loss-vs-zero-pipeline", cfg, lossOnly, zeroPipeline, true, 80)
	})
}

// TestTorusTranslationInvariance: shifting every initial position by a
// constant offset on the torus leaves all pairwise distances — and
// therefore the link dynamics, the traffic, and the cluster evolution —
// unchanged. Compared bit-for-bit on fixed seeds; positions near the
// exact range boundary could in principle flip by a rounding ulp, so a
// failure here after an unrelated change warrants re-checking with
// another seed before blaming the engine.
func TestTorusTranslationInvariance(t *testing.T) {
	const side, ticks = 8.0, 80
	models := map[string]mobility.Model{
		"static": mobility.Static{},
		"bcv":    mobility.BCV{Speed: 0.06},
		"epoch-rwp": mobility.EpochRWP{
			Speed: 0.06, Epoch: 4,
		},
	}
	for name, model := range models {
		t.Run(name, func(t *testing.T) {
			cfg := netsim.Config{
				N: 36, Side: side, Range: 1.5, Dt: 0.5, Seed: 7,
				Metric: geom.MetricTorus,
			}
			cfg.Model = model
			base := runFullStack(t, cfg, ticks)
			for _, delta := range []geom.Vec2{{X: side / 2, Y: side / 4}, {X: 3.1, Y: 6.7}} {
				cfg.Model = translate{inner: model, delta: delta}
				shifted := runFullStack(t, cfg, ticks)
				if borderMerged(base.eng.Tallies()) != borderMerged(shifted.eng.Tallies()) {
					t.Errorf("shift %v changed border-merged tallies:\nbase    %v\nshifted %v",
						delta, borderMerged(base.eng.Tallies()), borderMerged(shifted.eng.Tallies()))
				}
				if base.maint.Stats().Total() != shifted.maint.Stats().Total() {
					t.Errorf("shift %v changed total cluster maintenance traffic: %v vs %v",
						delta, base.maint.Stats().Total(), shifted.maint.Stats().Total())
				}
				for i := 0; i < cfg.N; i++ {
					id := netsim.NodeID(i)
					if base.maint.HeadOf(id) != shifted.maint.HeadOf(id) {
						t.Fatalf("shift %v changed head of node %d: %d vs %d",
							delta, i, base.maint.HeadOf(id), shifted.maint.HeadOf(id))
					}
				}
			}
		})
	}
}

// TestRelabelingInvariance: permuting node identities permutes
// trajectories exactly (for rng-free Step models), so identity-blind
// aggregates must be unchanged on both metrics. Cluster traffic is
// deliberately absent from the stack — Lowest-ID election depends on
// labels, so it is not relabeling-invariant.
func TestRelabelingInvariance(t *testing.T) {
	const n, ticks = 40, 80
	perm := rand.New(rand.NewSource(99)).Perm(n)
	models := map[string]mobility.Model{
		"static": mobility.Static{},
		"bcv":    mobility.BCV{Speed: 0.08},
	}
	for _, metric := range []geom.MetricKind{geom.MetricSquare, geom.MetricTorus} {
		for name, model := range models {
			t.Run(metric.String()+"/"+name, func(t *testing.T) {
				cfg := netsim.Config{
					N: n, Side: 6, Range: 1.3, Dt: 0.5, Seed: 13,
					Metric: metric, Model: model,
				}
				baseTallies, baseDegrees := runHelloOnly(t, cfg, ticks)
				cfg.Model = relabel{inner: model, perm: perm}
				permTallies, permDegrees := runHelloOnly(t, cfg, ticks)
				if baseTallies != permTallies {
					t.Errorf("relabeling changed tallies:\nbase %+v\nperm %+v", baseTallies, permTallies)
				}
				if !slices.Equal(baseDegrees, permDegrees) {
					t.Errorf("relabeling changed the degree multiset:\nbase %v\nperm %v", baseDegrees, permDegrees)
				}
			})
		}
	}
}

// TestDensityRescaleInvariance: doubling N and the area together keeps
// the density, so per-node link dynamics and mean degree are invariant
// up to sampling noise. Run on the torus, where there are no border
// effects to scale differently.
func TestDensityRescaleInvariance(t *testing.T) {
	const (
		rho, r, v = 2.0, 1.2, 0.05
		ticks     = 400
	)
	perNodeGenRate := func(n int) (float64, float64) {
		side := math.Sqrt(float64(n) / rho)
		cfg := netsim.Config{
			N: n, Side: side, Range: r, Dt: r / v / 25, Seed: 29,
			Metric: geom.MetricTorus,
			Model:  mobility.BCV{Speed: v},
		}
		tallies, degrees := runHelloOnly(t, cfg, ticks)
		sum := 0
		for _, d := range degrees {
			sum += d
		}
		duration := float64(ticks) * cfg.Dt
		return 2 * tallies.LinkGen / (float64(n) * duration), float64(sum) / float64(n)
	}
	smallRate, smallDeg := perNodeGenRate(96)
	largeRate, largeDeg := perNodeGenRate(192)
	if rel := math.Abs(largeRate/smallRate - 1); rel > 0.12 {
		t.Errorf("per-node link-gen rate not density-invariant: N=96 → %.4f, N=192 → %.4f (rel diff %.1f%%)",
			smallRate, largeRate, 100*rel)
	}
	if rel := math.Abs(largeDeg/smallDeg - 1); rel > 0.10 {
		t.Errorf("mean degree not density-invariant: N=96 → %.2f, N=192 → %.2f (rel diff %.1f%%)",
			smallDeg, largeDeg, 100*rel)
	}
}

// TestAnalyticColumnsSeedIndependent: the analysis series of the figure
// drivers are closed forms — they must be bit-identical across seeds
// (and Figure 4, which has no simulation at all, must be a pure
// function).
func TestAnalyticColumnsSeedIndependent(t *testing.T) {
	a1, b1, err := experiments.Figure4()
	if err != nil {
		t.Fatal(err)
	}
	a2, b2, err := experiments.Figure4()
	if err != nil {
		t.Fatal(err)
	}
	if a1.CSV() != a2.CSV() || b1.CSV() != b2.CSV() {
		t.Error("Figure4 is not a pure function of its (empty) inputs")
	}

	opts := experiments.DefaultOptions()
	opts.Workers = 1
	figA, err := experiments.Figure5b(opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	opts.Seed = opts.Seed*2 + 1
	figB, err := experiments.Figure5b(opts, 1)
	if err != nil {
		t.Fatal(err)
	}
	const anaName = "analysis (N·P from Eqn 16)"
	anaA, anaB := figA.Lookup(anaName), figB.Lookup(anaName)
	if anaA == nil || anaB == nil {
		t.Fatalf("Figure5b lost its %q series", anaName)
	}
	if !slices.Equal(anaA.Points, anaB.Points) {
		t.Errorf("Figure5b analysis column depends on the seed:\nseed A %v\nseed B %v", anaA.Points, anaB.Points)
	}
	simA, simB := figA.Lookup("simulation (LID formation)"), figB.Lookup("simulation (LID formation)")
	if simA == nil || simB == nil {
		t.Fatal("Figure5b lost its simulation series")
	}
	if slices.Equal(simA.Points, simB.Points) {
		t.Error("Figure5b simulation column ignored the seed — the sweep is not actually randomized")
	}
}
