package difftest

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/eventsim"
	"repro/internal/faults"
	"repro/internal/geom"
	"repro/internal/mobility"
	"repro/internal/netsim"
)

// scenarios generates the randomized lockstep matrix: count scenarios
// with N, density, range and speed drawn from a fixed-seed rng, cycling
// through both metrics, the mobility model families, the fault regimes
// and both maintenance modes. Fixed seed → the matrix is identical on
// every run, so a divergence is always reproducible by name.
func scenarios(count, ticks int) []Scenario {
	rng := rand.New(rand.NewSource(20060425)) // ICDCS 2006 — the paper's venue year
	metrics := []geom.MetricKind{geom.MetricSquare, geom.MetricTorus}
	var out []Scenario
	for i := 0; i < count; i++ {
		n := 8 + rng.Intn(41)          // 8..48 nodes
		density := 1 + 3*rng.Float64() // ρ ∈ [1,4) nodes per unit area
		side := math.Sqrt(float64(n) / density)
		// r down to 0.12·a forces fine grids (≥ 5 cells per axis), so the
		// windowed cell scan is exercised, not just the small-grid
		// whole-axis fallback.
		r := side * (0.12 + 0.3*rng.Float64()) // r ∈ [0.12,0.42)·a
		v := 0.02 + 0.2*rng.Float64()          // distance per unit time
		dt := r / v / 25                       // ~r/25 of travel per tick
		seed := rng.Uint64()

		// Cycle the optimized engine's tile count through serial, the
		// smallest parallel split and an oversubscribed split; the oracle
		// ignores Tiles, so every parallel scenario is also a
		// parallel-vs-serial equivalence check.
		tiles := []int{1, 2, 8}[i%3]
		s := Scenario{
			Cfg: netsim.Config{
				N: n, Side: side, Range: r, Dt: dt, Seed: seed,
				Metric: metrics[i%len(metrics)], Tiles: tiles,
			},
			Ticks: ticks,
		}
		switch i % 4 {
		case 0:
			s.NewModel = func() mobility.Model { return mobility.BCV{Speed: v} }
		case 1:
			epoch := 8 * dt
			s.NewModel = func() mobility.Model { return mobility.EpochRWP{Speed: v, Epoch: epoch} }
		case 2:
			s.NewModel = func() mobility.Model {
				return mobility.RandomWaypoint{MinSpeed: v / 2, MaxSpeed: 2 * v}
			}
		case 3:
			// RPGM is pointer-stateful — exactly why NewModel is a
			// factory and not a shared Model value.
			epoch, radius, jitter := 10*dt, r/2, v/4
			groups := 1 + n/8
			s.NewModel = func() mobility.Model {
				m, err := mobility.NewRPGM(groups, v, epoch, radius, jitter)
				if err != nil {
					panic(err)
				}
				return m
			}
		}
		switch i % 5 {
		case 1:
			s.Faults = &faults.Config{Loss: 0.1 + 0.2*rng.Float64()}
		case 2:
			s.Faults = &faults.Config{
				Burst: faults.GilbertElliott{
					PGoodBad: 0.05, PBadGood: 0.3, LossGood: 0.01, LossBad: 0.7,
				},
				Churn: faults.Churn{MeanUpTicks: 400, MeanDownTicks: 40},
			}
		case 3:
			// The reordering regime: jitter wide enough that frames
			// routinely overtake each other, plus duplication, plus a
			// little loss so all three pipeline stages fire together.
			s.Faults = &faults.Config{
				Loss:    0.05,
				Delay:   faults.Delay{BaseTicks: 1 + 2*rng.Float64(), JitterTicks: 1 + 3*rng.Float64()},
				DupProb: 0.05 + 0.15*rng.Float64(),
			}
		case 4:
			// A moving partition with delayed delivery: several
			// sever/heal cycles fit inside the run, so the lockstep
			// comparison covers the cut draw, the severed adjacency and
			// the heal re-flood through the pending queue.
			s.Faults = &faults.Config{
				Delay: faults.Delay{BaseTicks: rng.Float64(), JitterTicks: 2 * rng.Float64()},
				Partition: faults.Partition{
					PeriodTicks:   20 + int64(rng.Intn(21)),
					DurationTicks: 5 + int64(rng.Intn(6)),
				},
			}
		}
		// Soft-state handshake mode on half the faulted scenarios and a
		// few ideal ones, periodic HELLO on every fifth scenario.
		s.Handshake = i%5 != 0 && i%2 == 1 || i%8 == 0
		s.PeriodicHello = i%5 == 0
		s.Name = name(i, s)
		out = append(out, s)
	}
	return out
}

// name builds a stable, self-describing scenario label.
func name(i int, s Scenario) string {
	lbl := "square"
	if s.Cfg.Metric == geom.MetricTorus {
		lbl = "torus"
	}
	mode := "ideal"
	switch {
	case s.Faults == nil:
	case s.Faults.Partition.PeriodTicks > 0:
		mode = "partition+delay"
	case s.Faults.DupProb > 0:
		mode = "delay+dup"
	case s.Faults.Loss > 0:
		mode = "loss"
	default:
		mode = "burst+churn"
	}
	maint := "oracle"
	if s.Handshake {
		maint = "handshake"
	}
	hello := "event"
	if s.PeriodicHello {
		hello = "periodic"
	}
	return fmt.Sprintf("%s/%s/%s/%s-hello/n%d/t%d#%d", lbl, mode, maint, hello, s.Cfg.N, s.Cfg.Tiles, i)
}

// staticExtras appends deterministic static scenarios the randomized
// matrix never generates: they are where the event core's deepest fast
// paths live (frozen topology certificates, timer-only epochs, fully
// quiescent windows), so the lockstep must cover them explicitly.
func staticExtras(ticks int) []Scenario {
	base := netsim.Config{N: 40, Side: 8, Range: 2, Dt: 0.5, Seed: 20060425}
	return []Scenario{
		{Name: "static/ideal/oracle/periodic-hello/extra", Cfg: base, PeriodicHello: true, Ticks: ticks},
		{Name: "static/ideal/oracle/event-hello/extra", Cfg: base, Ticks: ticks},
		{Name: "static/ideal/handshake/periodic-hello/extra", Cfg: base, Handshake: true, PeriodicHello: true, Ticks: ticks},
	}
}

// TestLockstepMatrix is the differential gate: ≥ 20 randomized configs
// (24 in -short mode, 48 with more ticks otherwise) covering square and
// torus metrics, four mobility families, five media regimes (ideal,
// lossy, bursty+churn, delayed/reordered+duplicated, partitioned with
// delay) and oracle/handshake maintenance, plus deterministic static
// extras, each run in three-way lockstep (brute-force oracle, tick
// engine, event core) with zero tolerated divergence. The aggregated
// event-core counters must show every fast path actually fired across
// the matrix — a lockstep that never skips proves nothing about the
// event schedule.
func TestLockstepMatrix(t *testing.T) {
	count, ticks := 48, 120
	if testing.Short() {
		count, ticks = 24, 60
	}
	covered := map[string]bool{}
	var (
		mu  sync.Mutex
		agg eventsim.Stats
	)
	t.Run("matrix", func(t *testing.T) {
		for _, s := range append(scenarios(count, ticks), staticExtras(ticks)...) {
			s := s
			t.Run(s.Name, func(t *testing.T) {
				t.Parallel()
				st, err := LockstepObserved(s)
				if err != nil {
					t.Fatal(err)
				}
				mu.Lock()
				agg.Ticks += st.Ticks
				agg.TopoEvals += st.TopoEvals
				agg.SkippedTopo += st.SkippedTopo
				agg.PhaseRuns += st.PhaseRuns
				agg.SkippedPhases += st.SkippedPhases
				agg.TimerWakes += st.TimerWakes
				agg.ForcedPhases += st.ForcedPhases
				agg.PendingWakes += st.PendingWakes
				mu.Unlock()
			})
			if s.Cfg.Metric == geom.MetricTorus {
				covered["torus"] = true
			} else {
				covered["square"] = true
			}
			if s.Faults != nil {
				covered["faults"] = true
				if s.Faults.Delay.BaseTicks > 0 || s.Faults.Delay.JitterTicks > 0 {
					covered["delay"] = true
				}
				if s.Faults.DupProb > 0 {
					covered["dup"] = true
				}
				if s.Faults.Partition.PeriodTicks > 0 {
					covered["partition"] = true
				}
			}
			if s.Handshake {
				covered["handshake"] = true
			}
		}
	})
	for _, want := range []string{"square", "torus", "faults", "handshake", "delay", "dup", "partition"} {
		if !covered[want] {
			t.Errorf("scenario matrix lost %s coverage", want)
		}
	}
	for _, c := range []struct {
		name string
		got  int64
	}{
		{"topology evaluations", agg.TopoEvals},
		{"topology skips (quiescent windows)", agg.SkippedTopo},
		{"phase runs", agg.PhaseRuns},
		{"phase skips (idle protocol epochs)", agg.SkippedPhases},
		{"timer wakes (timer-only epochs)", agg.TimerWakes},
		{"forced post-activity phases", agg.ForcedPhases},
		{"pending-delivery wakes", agg.PendingWakes},
	} {
		if c.got == 0 {
			t.Errorf("event core never exercised %s across the matrix; stats: %+v", c.name, agg)
		}
	}
}

// TestStaticExtrasExerciseFastPaths pins per-scenario expectations on
// the deterministic static scenarios: the frozen-topology certificate
// must hold for the whole run, and the event-hello variant must be
// almost entirely quiescent.
func TestStaticExtrasExerciseFastPaths(t *testing.T) {
	const ticks = 100
	for _, s := range staticExtras(ticks) {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			st, err := LockstepObserved(s)
			if err != nil {
				t.Fatal(err)
			}
			// The first tick always evaluates topology to arm the
			// schedule; a static population must never re-evaluate.
			if st.TopoEvals != 1 || st.SkippedTopo != int64(ticks)-1 {
				t.Errorf("static run: want exactly 1 topology evaluation, got %+v", st)
			}
			switch {
			case s.Handshake:
				// Handshake maintenance ticks its retry clock every tick.
				if st.PhaseRuns != int64(ticks) {
					t.Errorf("handshake run: every phase must run, got %+v", st)
				}
			case s.PeriodicHello:
				// Beacons every 10·dt → ~1 phase per 10 ticks.
				if st.TimerWakes == 0 || st.SkippedPhases < int64(ticks)/2 {
					t.Errorf("timer-only run: want mostly skipped phases with timer wakes, got %+v", st)
				}
			default:
				if st.SkippedPhases < int64(ticks)-2 {
					t.Errorf("quiescent run: want nearly all phases skipped, got %+v", st)
				}
			}
		})
	}
}

// TestLockstepRejectsBadScenario pins the harness's own input checking.
func TestLockstepRejectsBadScenario(t *testing.T) {
	if err := Lockstep(Scenario{Name: "no-ticks", Cfg: netsim.Config{N: 2, Side: 4, Range: 1, Dt: 1}}); err == nil {
		t.Fatal("Lockstep accepted Ticks=0")
	}
	if err := Lockstep(Scenario{Name: "bad-cfg", Cfg: netsim.Config{N: 0}, Ticks: 1}); err == nil {
		t.Fatal("Lockstep accepted an invalid config")
	}
}
