package routing

import (
	"fmt"

	"repro/internal/netsim"
)

// FlatDSDV is the flat proactive baseline (Perkins & Bhagwat, ref [6] of
// the paper): every node keeps a route to every other node, and any link
// change triggers a network-wide table broadcast round in which each
// node transmits its full N-entry table. Triggered updates are batched
// per tick, as real DSDV batches them per update period, so simultaneous
// events share one round. Per-node overhead still grows with the whole
// network's link change rate — the scalability failure that motivates
// clustering.
type FlatDSDV struct {
	entryBits float64

	env     netsim.Env
	pending bool
	border  bool
	stats   Stats
}

var _ netsim.Protocol = (*FlatDSDV)(nil)

// NewFlatDSDV builds the baseline with the given table entry size.
func NewFlatDSDV(entryBits float64) (*FlatDSDV, error) {
	if entryBits <= 0 {
		return nil, fmt.Errorf("routing: entry size must be positive, got %g", entryBits)
	}
	return &FlatDSDV{entryBits: entryBits}, nil
}

// Name implements netsim.Protocol.
func (d *FlatDSDV) Name() string { return "routing/flat-dsdv" }

// Start implements netsim.Protocol.
func (d *FlatDSDV) Start(env netsim.Env) error {
	d.env = env
	return nil
}

// OnLinkEvent implements netsim.Protocol: mark the tick dirty; the
// round goes out at tick end.
func (d *FlatDSDV) OnLinkEvent(ev netsim.LinkEvent) {
	d.pending = true
	if ev.Border {
		d.border = true
	}
}

// OnMessage implements netsim.Protocol.
func (d *FlatDSDV) OnMessage(netsim.NodeID, netsim.Message) {}

// OnTick implements netsim.Protocol: flush one network-wide table round
// when any link changed this tick. The round is flagged Border only when
// every trigger was a border event.
func (d *FlatDSDV) OnTick(float64) {
	if !d.pending {
		return
	}
	n := d.env.NumNodes()
	bits := d.entryBits * float64(n)
	d.stats.Rounds++
	for i := 0; i < n; i++ {
		d.stats.RouteMsgs++
		d.env.Broadcast(netsim.Message{
			Kind:   netsim.MsgRoute,
			From:   netsim.NodeID(i),
			Bits:   bits,
			Border: d.border && d.pending,
		})
	}
	d.pending = false
	d.border = false
}

// Stats returns the activity counters.
func (d *FlatDSDV) Stats() Stats { return d.stats }

// Send forwards a payload along the proactive shortest path (flat DSDV
// converges to shortest paths on the full graph).
func (d *FlatDSDV) Send(src, dst netsim.NodeID) Delivery {
	path := shortestPath(d.env, src, dst, nil)
	if path == nil {
		d.stats.DeliveryFailures++
		return Delivery{}
	}
	for i := 0; i+1 < len(path); i++ {
		d.stats.DataMsgs++
		d.env.Broadcast(netsim.Message{Kind: netsim.MsgData, From: path[i], Bits: DefaultSizes.Data})
	}
	return Delivery{Delivered: true, Path: path, Hops: len(path) - 1}
}

// FlatAODV is the flat reactive baseline (Perkins & Royer, ref [7] of the
// paper): no proactive state at all; each route is discovered on demand
// by flooding an RREQ through every node, with discovered routes cached
// until a link on them breaks.
type FlatAODV struct {
	sizes Sizes

	env   netsim.Env
	stats Stats
	cache map[[2]netsim.NodeID][]netsim.NodeID
}

var _ netsim.Protocol = (*FlatAODV)(nil)

// NewFlatAODV builds the baseline.
func NewFlatAODV(sizes Sizes) (*FlatAODV, error) {
	if err := sizes.Validate(); err != nil {
		return nil, err
	}
	return &FlatAODV{sizes: sizes, cache: make(map[[2]netsim.NodeID][]netsim.NodeID)}, nil
}

// Name implements netsim.Protocol.
func (a *FlatAODV) Name() string { return "routing/flat-aodv" }

// Start implements netsim.Protocol.
func (a *FlatAODV) Start(env netsim.Env) error {
	a.env = env
	return nil
}

// OnLinkEvent implements netsim.Protocol.
func (a *FlatAODV) OnLinkEvent(netsim.LinkEvent) {}

// OnMessage implements netsim.Protocol.
func (a *FlatAODV) OnMessage(netsim.NodeID, netsim.Message) {}

// OnTick implements netsim.Protocol.
func (a *FlatAODV) OnTick(float64) {}

// Stats returns the activity counters.
func (a *FlatAODV) Stats() Stats { return a.stats }

// Send routes one payload, flooding a discovery when no live cached
// route exists. Flood cost: every node broadcasts the RREQ once (flat
// flooding has no backbone to thin it out), then the destination
// unicasts the RREP back hop by hop.
func (a *FlatAODV) Send(src, dst netsim.NodeID) Delivery {
	if src == dst {
		return Delivery{Delivered: true, Path: []netsim.NodeID{src}}
	}
	key := [2]netsim.NodeID{src, dst}
	if path, ok := a.cache[key]; ok && pathAlive(a.env, path) {
		a.stats.CacheHits++
		a.forwardData(path)
		return Delivery{Delivered: true, Path: path, Hops: len(path) - 1}
	}
	delete(a.cache, key)

	a.stats.Discoveries++
	n := a.env.NumNodes()
	for i := 0; i < n; i++ {
		a.env.Broadcast(netsim.Message{
			Kind: netsim.MsgRouteDiscovery,
			From: netsim.NodeID(i),
			Bits: a.sizes.Discovery,
		})
	}
	path := shortestPath(a.env, src, dst, nil)
	if path == nil {
		a.stats.DeliveryFailures++
		return Delivery{UsedDiscovery: true}
	}
	for i := len(path) - 1; i > 0; i-- {
		a.env.Broadcast(netsim.Message{
			Kind: netsim.MsgRouteDiscovery,
			From: path[i],
			Bits: a.sizes.Discovery,
		})
	}
	a.cache[key] = path
	a.forwardData(path)
	return Delivery{Delivered: true, Path: path, Hops: len(path) - 1, UsedDiscovery: true}
}

// forwardData counts one data transmission per hop.
func (a *FlatAODV) forwardData(path []netsim.NodeID) {
	for i := 0; i+1 < len(path); i++ {
		a.stats.DataMsgs++
		a.env.Broadcast(netsim.Message{Kind: netsim.MsgData, From: path[i], Bits: a.sizes.Data})
	}
}
