package routing

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/mobility"
	"repro/internal/netsim"
)

func newSim(t *testing.T, cfg netsim.Config) *netsim.Sim {
	t.Helper()
	s, err := netsim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mobileConfig(seed uint64) netsim.Config {
	return netsim.Config{
		N: 120, Side: 10, Range: 1.8, Dt: 0.05, Seed: seed,
		Model: mobility.EpochRWP{Speed: 0.4, Epoch: 2},
	}
}

// buildStack wires hello + clustering + hybrid routing onto a simulator.
func buildStack(t *testing.T, s *netsim.Sim) (*Hello, *cluster.Maintainer, *Hybrid) {
	t.Helper()
	hello, err := NewHello(64)
	if err != nil {
		t.Fatal(err)
	}
	m, err := cluster.NewMaintainer(cluster.LID{}, 128)
	if err != nil {
		t.Fatal(err)
	}
	hy, err := NewHybrid(m, DefaultSizes)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Register(hello, m, hy); err != nil {
		t.Fatal(err)
	}
	return hello, m, hy
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewHello(0); err == nil {
		t.Error("zero hello bits accepted")
	}
	if _, err := NewPeriodicHello(64, 0); err == nil {
		t.Error("zero interval accepted")
	}
	if _, err := NewPeriodicHello(0, 1); err == nil {
		t.Error("zero periodic bits accepted")
	}
	if _, err := NewHybrid(nil, DefaultSizes); err == nil {
		t.Error("nil maintainer accepted")
	}
	m, err := cluster.NewMaintainer(cluster.LID{}, 128)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewHybrid(m, Sizes{}); err == nil {
		t.Error("zero sizes accepted")
	}
	if _, err := NewFlatDSDV(0); err == nil {
		t.Error("zero DSDV entry accepted")
	}
	if _, err := NewFlatAODV(Sizes{}); err == nil {
		t.Error("zero AODV sizes accepted")
	}
}

func TestHelloLowerBoundRate(t *testing.T) {
	// Event-driven HELLO: exactly two beacons per link generation
	// (one per endpoint), none for breaks.
	s := newSim(t, mobileConfig(1))
	hello, err := NewHello(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Register(hello); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	startTally := s.Tallies()
	if err := s.Run(20); err != nil {
		t.Fatal(err)
	}
	w := s.Tallies().Sub(startTally)
	gens := w.LinkGen + w.BorderGen
	hellos := w.Of(netsim.MsgHello).Msgs
	if hellos != 2*gens {
		t.Errorf("hellos = %v, want 2×gens = %v", hellos, 2*gens)
	}
	// Border-triggered beacons must carry the border flag.
	if w.BorderGen > 0 && w.BorderOf(netsim.MsgHello).Msgs != 2*w.BorderGen {
		t.Errorf("border hellos = %v, want %v", w.BorderOf(netsim.MsgHello).Msgs, 2*w.BorderGen)
	}
}

func TestHelloTablesTrackTopology(t *testing.T) {
	s := newSim(t, mobileConfig(2))
	hello, err := NewHello(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Register(hello); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	// Event-driven beacons plus soft-timer removal keep tables exactly
	// synchronized with the true adjacency.
	for i := 0; i < s.NumNodes(); i++ {
		id := netsim.NodeID(i)
		nbs := s.Neighbors(id)
		if hello.TableSize(id) != len(nbs) {
			t.Fatalf("node %d: table %d entries, topology %d", i, hello.TableSize(id), len(nbs))
		}
		for _, nb := range nbs {
			if !hello.Knows(id, nb) {
				t.Fatalf("node %d missing neighbor %d", i, nb)
			}
		}
	}
}

func TestPeriodicHelloBeacons(t *testing.T) {
	cfg := mobileConfig(3)
	s := newSim(t, cfg)
	hello, err := NewPeriodicHello(64, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Register(hello); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	base := s.Tallies().Of(netsim.MsgHello).Msgs // initial burst
	if err := s.Run(5); err != nil {
		t.Fatal(err)
	}
	got := s.Tallies().Of(netsim.MsgHello).Msgs - base
	want := float64(cfg.N) * 10 // 5 time units / 0.5 interval
	if got < want*0.9 || got > want*1.1 {
		t.Errorf("periodic hellos = %v, want ≈%v", got, want)
	}
	if hello.Name() != "hello" {
		t.Error("name wrong")
	}
}

func TestHybridRouteRoundsMatchIntraChanges(t *testing.T) {
	s := newSim(t, mobileConfig(4))
	_, m, hy := buildStack(t, s)
	if err := s.Run(20); err != nil {
		t.Fatal(err)
	}
	stats := hy.Stats()
	if stats.Rounds == 0 {
		t.Fatal("no table rounds under mobility")
	}
	tally := s.Tallies().Of(netsim.MsgRoute)
	if tally.Msgs != stats.RouteMsgs {
		t.Errorf("engine tally %v != stats %v", tally.Msgs, stats.RouteMsgs)
	}
	// Each round broadcasts once per cluster member, so messages per
	// round must be at least 1 and on average near the mean cluster
	// size 1/P.
	perRound := stats.RouteMsgs / stats.Rounds
	if perRound < 1 {
		t.Errorf("messages per round = %v", perRound)
	}
	meanSize := 1 / m.HeadRatio()
	if perRound > 5*meanSize {
		t.Errorf("messages per round %v implausible vs mean cluster size %v", perRound, meanSize)
	}
}

func TestHybridIntraClusterDelivery(t *testing.T) {
	s := newSim(t, mobileConfig(5))
	_, m, hy := buildStack(t, s)
	if err := s.Run(2); err != nil {
		t.Fatal(err)
	}
	// Pick a head with at least two members and send member → member.
	a := m.Assignment()
	var head netsim.NodeID = -1
	for h, size := range a.ClusterSizes() {
		if size >= 3 && a.Role[h] == cluster.RoleHead {
			head = h
			break
		}
	}
	if head < 0 {
		t.Skip("no 3-node cluster in this placement")
	}
	members := a.Members(head)
	var src, dst netsim.NodeID = -1, -1
	for _, x := range members {
		if x != head {
			if src < 0 {
				src = x
			} else {
				dst = x
				break
			}
		}
	}
	del := hy.Send(src, dst)
	if !del.Delivered || !del.IntraCluster || del.UsedDiscovery {
		t.Fatalf("intra delivery failed: %+v", del)
	}
	if del.Hops < 1 || del.Hops > 2 {
		t.Errorf("intra-cluster path should be ≤ 2 hops, got %d (%v)", del.Hops, del.Path)
	}
	// Every node on the path must be in the cluster.
	for _, x := range del.Path {
		if a.Head[x] != head {
			t.Errorf("path node %d outside cluster %d", x, head)
		}
	}
	// Next hop accessor agrees with the path.
	nh, ok := hy.NextHopIntra(src, dst)
	if !ok || nh != del.Path[1] {
		t.Errorf("NextHopIntra = %v,%v want %v", nh, ok, del.Path[1])
	}
	if _, ok := hy.NextHopIntra(src, pickForeign(a, head)); ok {
		t.Error("NextHopIntra crossed clusters")
	}
}

// pickForeign returns some node outside the given cluster.
func pickForeign(a cluster.Assignment, head netsim.NodeID) netsim.NodeID {
	for i, h := range a.Head {
		if h != head {
			return netsim.NodeID(i)
		}
	}
	return 0
}

func TestHybridInterClusterDeliveryAndCache(t *testing.T) {
	s := newSim(t, mobileConfig(6))
	_, m, hy := buildStack(t, s)
	if err := s.Run(2); err != nil {
		t.Fatal(err)
	}
	a := m.Assignment()
	// Find a cross-cluster pair that is actually connected.
	var src, dst netsim.NodeID = -1, -1
	for i := 0; i < s.NumNodes() && src < 0; i++ {
		for j := 0; j < s.NumNodes(); j++ {
			si, sj := netsim.NodeID(i), netsim.NodeID(j)
			if a.Head[si] != a.Head[sj] && shortestPath(s, si, sj, nil) != nil {
				src, dst = si, sj
				break
			}
		}
	}
	if src < 0 {
		t.Skip("no connected cross-cluster pair")
	}
	before := hy.Stats()
	del := hy.Send(src, dst)
	if !del.Delivered || !del.UsedDiscovery || del.IntraCluster {
		t.Fatalf("inter delivery: %+v", del)
	}
	mid := hy.Stats()
	if mid.Discoveries != before.Discoveries+1 {
		t.Errorf("discoveries = %v, want +1", mid.Discoveries)
	}
	// Second send hits the cache (topology unchanged between sends).
	del2 := hy.Send(src, dst)
	if !del2.Delivered || del2.UsedDiscovery {
		t.Fatalf("cached delivery: %+v", del2)
	}
	after := hy.Stats()
	if after.CacheHits != mid.CacheHits+1 || after.Discoveries != mid.Discoveries {
		t.Errorf("cache not used: %+v vs %+v", after, mid)
	}
	// Discovery traffic was tallied on the engine.
	if s.Tallies().Of(netsim.MsgRouteDiscovery).Msgs == 0 {
		t.Error("no discovery traffic tallied")
	}
}

func TestHybridSelfSend(t *testing.T) {
	s := newSim(t, mobileConfig(7))
	_, _, hy := buildStack(t, s)
	if err := s.Run(1); err != nil {
		t.Fatal(err)
	}
	del := hy.Send(3, 3)
	if !del.Delivered || del.Hops != 0 || len(del.Path) != 1 {
		t.Errorf("self send: %+v", del)
	}
}

func TestFlatDSDVRounds(t *testing.T) {
	cfg := mobileConfig(8)
	cfg.N = 60 // flat DSDV floods hard; keep the test quick
	s := newSim(t, cfg)
	d, err := NewFlatDSDV(128)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Register(d); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	start := s.Tallies()
	if err := s.Run(5); err != nil {
		t.Fatal(err)
	}
	w := s.Tallies().Sub(start)
	events := w.LinkGen + w.LinkBrk + w.BorderGen + w.BorderBrk
	rounds := d.Stats().Rounds
	if rounds == 0 {
		t.Fatal("no DSDV rounds under mobility")
	}
	// Triggered updates are batched per tick: at most one round per
	// event, at least one round while events keep arriving.
	if rounds > events {
		t.Errorf("rounds = %v exceed events = %v", rounds, events)
	}
	wantMsgs := rounds * float64(cfg.N)
	if got := w.Of(netsim.MsgRoute).Msgs; got != wantMsgs {
		t.Errorf("flat DSDV msgs = %v, want rounds×N = %v", got, wantMsgs)
	}
	// Bits per message = N entries.
	if got := w.Of(netsim.MsgRoute).Bits; got != wantMsgs*128*float64(cfg.N) {
		t.Errorf("flat DSDV bits = %v", got)
	}
	del := d.Send(0, netsim.NodeID(cfg.N-1))
	if del.Delivered != (del.Path != nil) {
		t.Errorf("inconsistent delivery: %+v", del)
	}
}

func TestFlatAODVDiscoveryAndCache(t *testing.T) {
	cfg := mobileConfig(9)
	s := newSim(t, cfg)
	a, err := NewFlatAODV(DefaultSizes)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Register(a); err != nil {
		t.Fatal(err)
	}
	if err := s.Run(1); err != nil {
		t.Fatal(err)
	}
	// Find a connected pair.
	var src, dst netsim.NodeID = -1, -1
	for j := 1; j < s.NumNodes(); j++ {
		if shortestPath(s, 0, netsim.NodeID(j), nil) != nil {
			src, dst = 0, netsim.NodeID(j)
			break
		}
	}
	if src < 0 {
		t.Skip("node 0 isolated")
	}
	del := a.Send(src, dst)
	if !del.Delivered || !del.UsedDiscovery {
		t.Fatalf("AODV delivery: %+v", del)
	}
	// Flood cost: every node broadcast one RREQ.
	rreq := s.Tallies().Of(netsim.MsgRouteDiscovery).Msgs
	if rreq < float64(cfg.N) {
		t.Errorf("flood sent %v RREQs, want ≥ N = %d", rreq, cfg.N)
	}
	del2 := a.Send(src, dst)
	if !del2.Delivered || del2.UsedDiscovery {
		t.Errorf("cache not used: %+v", del2)
	}
	if a.Stats().CacheHits != 1 {
		t.Errorf("cache hits = %v", a.Stats().CacheHits)
	}
	if self := a.Send(5, 5); !self.Delivered || self.Hops != 0 {
		t.Errorf("self send: %+v", self)
	}
}

func TestShortestPathHelpers(t *testing.T) {
	s := newSim(t, mobileConfig(10))
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	// Path to self.
	p := shortestPath(s, 4, 4, nil)
	if len(p) != 1 || p[0] != 4 {
		t.Errorf("self path = %v", p)
	}
	// A found path must be a valid neighbor chain and minimal vs BFS
	// re-check (spot check symmetry src↔dst lengths).
	for j := 1; j < 20; j++ {
		p := shortestPath(s, 0, netsim.NodeID(j), nil)
		if p == nil {
			continue
		}
		if p[0] != 0 || p[len(p)-1] != netsim.NodeID(j) {
			t.Fatalf("endpoints wrong: %v", p)
		}
		if !pathAlive(s, p) {
			t.Fatalf("path not alive: %v", p)
		}
		q := shortestPath(s, netsim.NodeID(j), 0, nil)
		if len(q) != len(p) {
			t.Fatalf("asymmetric shortest path lengths: %d vs %d", len(p), len(q))
		}
	}
	if pathAlive(s, nil) {
		t.Error("nil path alive")
	}
}

func TestHybridRoundsExcludeInterClusterChanges(t *testing.T) {
	// Statistical check: route rounds must be rarer than total link
	// changes (only intra-cluster changes trigger rounds).
	s := newSim(t, mobileConfig(11))
	_, _, hy := buildStack(t, s)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	start := s.Tallies()
	if err := s.Run(20); err != nil {
		t.Fatal(err)
	}
	w := s.Tallies().Sub(start)
	changes := w.LinkGen + w.LinkBrk + w.BorderGen + w.BorderBrk
	if hy.Stats().Rounds >= changes {
		t.Errorf("rounds %v should be < total changes %v", hy.Stats().Rounds, changes)
	}
	if hy.Stats().Rounds == 0 {
		t.Error("no rounds at all")
	}
}
