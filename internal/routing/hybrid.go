package routing

import (
	"fmt"
	"math"

	"repro/internal/cluster"
	"repro/internal/netsim"
)

// Sizes carries the routing message sizes in bits.
type Sizes struct {
	// Entry is the size of one routing table entry (the paper's
	// p_route); a proactive broadcast carries one entry per cluster
	// member.
	Entry float64
	// Discovery is the size of one RREQ/RREP discovery message.
	Discovery float64
	// Data is the size of one application payload.
	Data float64
}

// DefaultSizes are representative values: 16-byte table entries, 24-byte
// discovery packets, 64-byte data payloads.
var DefaultSizes = Sizes{Entry: 128, Discovery: 192, Data: 512}

// Validate checks that all sizes are positive.
func (s Sizes) Validate() error {
	if s.Entry <= 0 || s.Discovery <= 0 || s.Data <= 0 {
		return fmt.Errorf("routing: sizes must be positive, got %+v", s)
	}
	return nil
}

// Stats counts hybrid routing activity.
type Stats struct {
	// Rounds is the number of intra-cluster table broadcast rounds
	// (one per intra-cluster link change — the Eqn (13) events).
	Rounds float64
	// RouteMsgs is the number of ROUTE broadcasts those rounds emitted.
	RouteMsgs float64
	// Discoveries is the number of inter-cluster route discoveries
	// (RREQ floods).
	Discoveries float64
	// CacheHits counts sends that reused a live cached route.
	CacheHits float64
	// DataMsgs counts per-hop data transmissions.
	DataMsgs float64
	// DeliveryFailures counts sends that found no path.
	DeliveryFailures float64
}

// Delivery describes the outcome of one end-to-end send.
type Delivery struct {
	// Delivered reports whether a path existed and the payload arrived.
	Delivered bool
	// Path is the node sequence used (nil when undeliverable).
	Path []netsim.NodeID
	// Hops is len(Path)−1 for delivered payloads.
	Hops int
	// IntraCluster reports whether source and destination shared a
	// cluster (purely proactive forwarding, no discovery needed).
	IntraCluster bool
	// UsedDiscovery reports whether an RREQ flood was required (cache
	// miss or broken cached route).
	UsedDiscovery bool
}

// Hybrid is the hybrid routing protocol of §3.1: proactive distance-
// vector routing within each cluster (every intra-cluster link change
// triggers one table broadcast round through that cluster) and reactive,
// cache-based discovery between clusters over the cluster-head/gateway
// backbone.
//
// Register it after the cluster.Maintainer whose clustering it follows;
// it classifies each link event against the clustering as of the end of
// the previous tick (the state in which the event occurred), then lets
// the maintainer's updated assignment drive forwarding.
type Hybrid struct {
	cl    *cluster.Maintainer
	sizes Sizes

	env      netsim.Env
	prevHead []netsim.NodeID
	stats    Stats
	cache    map[[2]netsim.NodeID][]netsim.NodeID
}

var _ netsim.Protocol = (*Hybrid)(nil)

// NewHybrid builds the hybrid protocol on top of a cluster maintainer.
func NewHybrid(cl *cluster.Maintainer, sizes Sizes) (*Hybrid, error) {
	if cl == nil {
		return nil, fmt.Errorf("routing: nil cluster maintainer")
	}
	if err := sizes.Validate(); err != nil {
		return nil, err
	}
	return &Hybrid{cl: cl, sizes: sizes, cache: make(map[[2]netsim.NodeID][]netsim.NodeID)}, nil
}

// Name implements netsim.Protocol.
func (h *Hybrid) Name() string { return "routing/hybrid" }

// Start implements netsim.Protocol.
func (h *Hybrid) Start(env netsim.Env) error {
	h.env = env
	h.snapshotHeads()
	return nil
}

// snapshotHeads records the current affiliation of every node.
func (h *Hybrid) snapshotHeads() {
	n := h.env.NumNodes()
	if h.prevHead == nil {
		h.prevHead = make([]netsim.NodeID, n)
	}
	for i := 0; i < n; i++ {
		h.prevHead[i] = h.cl.HeadOf(netsim.NodeID(i))
	}
}

// OnLinkEvent implements netsim.Protocol: a route-changing intra-cluster
// link event triggers one proactive table round through the affected
// cluster — each member broadcasts its table of one entry per member
// (Eqns 13–14). In a one-hop cluster the routing structure is the star
// around the head (member → head → member), so routes change exactly
// when a member–head link breaks; member–member link changes are
// shortcuts the table never uses, and member–head generations are
// inter-cluster events (a node linked to its own head cannot gain that
// link again).
func (h *Hybrid) OnLinkEvent(ev netsim.LinkEvent) {
	if ev.Up {
		return
	}
	ca, cb := h.prevHead[ev.A], h.prevHead[ev.B]
	if ca != cb {
		return
	}
	// One endpoint must have been the cluster head.
	if ca != ev.A && ca != ev.B {
		return
	}
	var members []netsim.NodeID
	for i, head := range h.prevHead {
		if head == ca {
			members = append(members, netsim.NodeID(i))
		}
	}
	bits := h.sizes.Entry * float64(len(members))
	h.stats.Rounds++
	for _, m := range members {
		h.stats.RouteMsgs++
		h.env.Broadcast(netsim.Message{
			Kind:   netsim.MsgRoute,
			From:   m,
			Bits:   bits,
			Border: ev.Border,
		})
	}
}

// OnMessage implements netsim.Protocol.
func (h *Hybrid) OnMessage(netsim.NodeID, netsim.Message) {}

// OnTick implements netsim.Protocol: refresh the affiliation snapshot
// after the maintainer has settled this tick's changes.
func (h *Hybrid) OnTick(float64) {
	h.snapshotHeads()
}

// NextWake implements netsim.Waker. The snapshot OnTick refreshes can
// only go stale on a tick with cluster activity (link events or
// message traffic), and the event core always runs the full phase —
// including this OnTick — on the tick after any activity, which is
// exactly when a tick engine's snapshot would next be consulted with
// refreshed contents. So no standalone timer is needed.
func (h *Hybrid) NextWake(float64) float64 { return math.Inf(1) }

// Stats returns a snapshot of the activity counters.
func (h *Hybrid) Stats() Stats { return h.stats }

// NextHopIntra returns the proactive next hop from src toward a
// destination in the same cluster, derived from the converged
// distance-vector state (forwarding stays inside the cluster). The
// second result is false when dst is in another cluster or unreachable
// within it.
func (h *Hybrid) NextHopIntra(src, dst netsim.NodeID) (netsim.NodeID, bool) {
	if h.cl.HeadOf(src) != h.cl.HeadOf(dst) {
		return 0, false
	}
	path := h.intraPath(src, dst)
	if len(path) < 2 {
		return 0, false
	}
	return path[1], true
}

// intraPath computes the converged intra-cluster route: shortest path
// using only nodes of the shared cluster.
func (h *Hybrid) intraPath(src, dst netsim.NodeID) []netsim.NodeID {
	head := h.cl.HeadOf(src)
	return shortestPath(h.env, src, dst, func(id netsim.NodeID) bool {
		return h.cl.HeadOf(id) == head
	})
}

// Send routes one data payload from src to dst, counting every
// transmission: intra-cluster payloads follow the proactive tables;
// inter-cluster payloads use the route cache, flooding one RREQ over the
// backbone (heads and gateways) on a miss and unicasting the RREP back.
func (h *Hybrid) Send(src, dst netsim.NodeID) Delivery {
	if src == dst {
		return Delivery{Delivered: true, Path: []netsim.NodeID{src}, IntraCluster: true}
	}
	if h.cl.HeadOf(src) == h.cl.HeadOf(dst) {
		path := h.intraPath(src, dst)
		if path == nil {
			// The cluster spans one hop around its head, so two
			// same-cluster nodes are at most two hops apart and always
			// connected through the head; a nil path can only mean the
			// topology changed mid-query.
			h.stats.DeliveryFailures++
			return Delivery{}
		}
		h.forwardData(path)
		return Delivery{Delivered: true, Path: path, Hops: len(path) - 1, IntraCluster: true}
	}

	key := [2]netsim.NodeID{src, dst}
	path, cached := h.cache[key]
	if cached && pathAlive(h.env, path) {
		h.stats.CacheHits++
		h.forwardData(path)
		return Delivery{Delivered: true, Path: path, Hops: len(path) - 1}
	}
	delete(h.cache, key)

	path = h.discover(src, dst)
	if path == nil {
		h.stats.DeliveryFailures++
		return Delivery{UsedDiscovery: true}
	}
	h.cache[key] = path
	h.forwardData(path)
	return Delivery{Delivered: true, Path: path, Hops: len(path) - 1, UsedDiscovery: true}
}

// discover floods one RREQ over the clustered backbone and returns the
// discovered route. Flood cost: the source plus every head and every
// gateway (a member with a neighbor affiliated elsewhere) broadcasts the
// RREQ once — the clustered-flooding economy that motivates hierarchical
// routing. The destination unicasts an RREP back along the reverse path.
func (h *Hybrid) discover(src, dst netsim.NodeID) []netsim.NodeID {
	h.stats.Discoveries++
	n := h.env.NumNodes()
	for i := 0; i < n; i++ {
		id := netsim.NodeID(i)
		if id != src && id != dst && !h.onBackbone(id) {
			continue
		}
		h.env.Broadcast(netsim.Message{
			Kind: netsim.MsgRouteDiscovery,
			From: id,
			Bits: h.sizes.Discovery,
		})
	}
	// The flood reaches dst along backbone paths; the returned route is
	// the shortest such path (what the first-arriving RREQ establishes).
	path := shortestPath(h.env, src, dst, h.onBackbone)
	if path == nil {
		// Fall back to any path: sparse regions may lack backbone
		// connectivity even when the flat graph is connected.
		path = shortestPath(h.env, src, dst, nil)
	}
	if path == nil {
		return nil
	}
	// RREP: one unicast per hop back from dst to src.
	for i := len(path) - 1; i > 0; i-- {
		h.env.Broadcast(netsim.Message{
			Kind: netsim.MsgRouteDiscovery,
			From: path[i],
			Bits: h.sizes.Discovery,
		})
	}
	return path
}

// onBackbone reports whether a node forwards inter-cluster floods: every
// cluster-head, and every member that bridges to a foreign cluster.
func (h *Hybrid) onBackbone(id netsim.NodeID) bool {
	if h.cl.RoleOf(id) == cluster.RoleHead {
		return true
	}
	own := h.cl.HeadOf(id)
	for _, nb := range h.env.Neighbors(id) {
		if h.cl.HeadOf(nb) != own {
			return true
		}
	}
	return false
}

// forwardData counts one data transmission per hop of the path.
func (h *Hybrid) forwardData(path []netsim.NodeID) {
	for i := 0; i+1 < len(path); i++ {
		h.stats.DataMsgs++
		h.env.Broadcast(netsim.Message{
			Kind: netsim.MsgData,
			From: path[i],
			Bits: h.sizes.Data,
		})
	}
}
