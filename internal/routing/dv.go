package routing

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/netsim"
)

// InfMetric is the unreachable distance (clusters are one-hop, so any
// real intra-cluster route has metric ≤ 2; 16 leaves generous margin for
// transient states).
const InfMetric = 16

// Entry is one distance-vector table row: the DSDV triple of destination
// sequence number, metric and next hop.
type Entry struct {
	Dest    netsim.NodeID
	NextHop netsim.NodeID
	Metric  int
	// Seq is the destination-owned sequence number: even numbers are
	// issued by the destination itself, odd numbers mark broken-route
	// advertisements issued by a detecting neighbor.
	Seq uint32
}

// vectorAd is the payload of a MsgRoute broadcast: the sender's current
// vector for its cluster.
type vectorAd struct {
	Cluster netsim.NodeID
	Rows    []Entry
}

// IntraDV is a working DSDV-style distance-vector protocol scoped to
// each cluster: every node owns a monotone sequence number for its own
// entry, advertises its vector to same-cluster neighbors, adopts routes
// with newer sequence numbers (or equal sequence and better metric), and
// poisons routes through broken links with odd-sequence infinite-metric
// advertisements. Updates are triggered and cascade within a tick until
// the cluster quiesces, so tables are always converged between ticks —
// the property the paper's "steady state" analysis assumes and that
// TestIntraDVConvergedTables verifies against BFS ground truth.
//
// IntraDV complements the accounting-oriented Hybrid protocol: Hybrid
// prices table rounds exactly as Eqns (13)–(14) do, while IntraDV runs
// the actual distributed machinery those rounds idealize. Register it
// after the cluster.Maintainer it follows.
type IntraDV struct {
	cl        *cluster.Maintainer
	entryBits float64

	env      netsim.Env
	tables   []map[netsim.NodeID]Entry
	ownSeq   []uint32
	dirty    []bool
	prevHead []netsim.NodeID

	// advSeq numbers each node's advertisements (distinct from the DSDV
	// destination sequence numbers inside the rows); filter rejects
	// stale and medium-duplicated adverts so a delayed vector cannot
	// roll a table back or re-trigger a cascade.
	advSeq []uint32
	filter *netsim.SeqFilter

	// Soft state (EnableSoftState): routes expire unless refreshed, so
	// tables survive a medium that silently loses advertisements.
	softTTL     float64 // seconds a route lives without support; 0 = off
	softRefresh float64 // seconds between periodic refresh advertisements
	refreshed   []map[netsim.NodeID]float64
	lastAdv     []float64
}

var _ netsim.Protocol = (*IntraDV)(nil)

// NewIntraDV builds the protocol on top of a cluster maintainer.
func NewIntraDV(cl *cluster.Maintainer, entryBits float64) (*IntraDV, error) {
	if cl == nil {
		return nil, fmt.Errorf("routing: nil cluster maintainer")
	}
	if entryBits <= 0 {
		return nil, fmt.Errorf("routing: entry size must be positive, got %g", entryBits)
	}
	return &IntraDV{cl: cl, entryBits: entryBits}, nil
}

// EnableSoftState makes route entries soft state: every node
// re-advertises its vector at least every refreshInterval seconds, and an
// entry that goes ttl seconds without a supporting advertisement from its
// next hop is expired (poisoned) instead of trusted forever. The default
// hard-state behavior assumes the ideal medium's guaranteed delivery;
// soft state is what keeps tables truthful when a fault medium silently
// drops advertisements. ttl must exceed refreshInterval (several times
// over, to ride out individual losses). Must be called before Start.
func (dv *IntraDV) EnableSoftState(refreshInterval, ttl float64) error {
	if dv.env != nil {
		return fmt.Errorf("routing: EnableSoftState after Start")
	}
	if !(refreshInterval > 0) || !(ttl > refreshInterval) {
		return fmt.Errorf("routing: need ttl > refresh interval > 0, got ttl=%g refresh=%g", ttl, refreshInterval)
	}
	dv.softRefresh = refreshInterval
	dv.softTTL = ttl
	return nil
}

// Name implements netsim.Protocol.
func (dv *IntraDV) Name() string { return "routing/intra-dv" }

// Start implements netsim.Protocol: seed every node's table with itself
// and advertise, letting the cascade converge each cluster.
func (dv *IntraDV) Start(env netsim.Env) error {
	dv.env = env
	n := env.NumNodes()
	dv.tables = make([]map[netsim.NodeID]Entry, n)
	dv.ownSeq = make([]uint32, n)
	dv.dirty = make([]bool, n)
	dv.prevHead = make([]netsim.NodeID, n)
	dv.advSeq = make([]uint32, n)
	dv.filter = netsim.NewSeqFilter(n)
	if dv.softTTL > 0 {
		dv.refreshed = make([]map[netsim.NodeID]float64, n)
		dv.lastAdv = make([]float64, n)
		for i := range dv.refreshed {
			dv.refreshed[i] = make(map[netsim.NodeID]float64)
		}
	}
	for i := 0; i < n; i++ {
		dv.prevHead[i] = dv.cl.HeadOf(netsim.NodeID(i))
		id := netsim.NodeID(i)
		dv.tables[i] = map[netsim.NodeID]Entry{
			id: {Dest: id, NextHop: id, Metric: 0, Seq: 0},
		}
		dv.advertise(id)
	}
	return nil
}

// OnLinkEvent implements netsim.Protocol. A break poisons routes whose
// next hop just vanished; any event involving a node makes it re-
// advertise, which re-converges the affected cluster within the tick.
func (dv *IntraDV) OnLinkEvent(ev netsim.LinkEvent) {
	if !ev.Up {
		dv.poison(ev.A, ev.B)
		dv.poison(ev.B, ev.A)
	}
	dv.markDirty(ev.A)
	dv.markDirty(ev.B)
}

// poison marks every route of `at` that runs through the lost neighbor
// as broken: infinite metric with the next odd sequence number, the DSDV
// break advertisement.
func (dv *IntraDV) poison(at, lost netsim.NodeID) {
	tbl := dv.tables[at]
	for dest, e := range tbl {
		if dest != at && e.NextHop == lost && e.Metric < InfMetric {
			e.Metric = InfMetric
			e.Seq++ // even destination-issued → odd broken
			tbl[dest] = e
		}
	}
}

// OnMessage implements netsim.Protocol: fold a neighbor's vector into
// the receiver's table under the DSDV adoption rule, and re-advertise on
// change (the in-tick cascade).
func (dv *IntraDV) OnMessage(rcv netsim.NodeID, msg netsim.Message) {
	if msg.Kind != netsim.MsgRoute {
		return
	}
	ad, ok := msg.Payload.(vectorAd)
	if !ok {
		return // a Hybrid accounting round or foreign payload
	}
	// Hardening against delaying/reordering/duplicating media: reject
	// adverts that arrive out of sequence (an old vector must never roll
	// the table back) and adverts from nodes that are no longer
	// neighbors (adopting them would install a next hop the receiver
	// cannot reach). Same-tick delivery implies in-order arrival from a
	// current neighbor, so the ideal and loss-only paths never hit
	// either guard. The payload type is checked first so Hybrid's
	// unstamped accounting rounds never touch the filter.
	if !dv.filter.Fresh(rcv, msg.From, msg.Seq) {
		return
	}
	if !dv.env.IsNeighbor(rcv, msg.From) {
		return
	}
	if dv.cl.HeadOf(rcv) != ad.Cluster || dv.cl.HeadOf(msg.From) != ad.Cluster {
		return // stale cross-cluster advertisement
	}
	changed := false
	tbl := dv.tables[rcv]
	for _, row := range ad.Rows {
		if row.Dest == rcv {
			// The destination outruns any stale report about itself.
			if row.Seq > dv.ownSeq[rcv] {
				dv.ownSeq[rcv] = row.Seq + 2 - row.Seq%2
				tbl[rcv] = Entry{Dest: rcv, NextHop: rcv, Metric: 0, Seq: dv.ownSeq[rcv]}
				changed = true
			}
			continue
		}
		cand := Entry{Dest: row.Dest, NextHop: msg.From, Metric: row.Metric + 1, Seq: row.Seq}
		if cand.Metric > InfMetric {
			cand.Metric = InfMetric
		}
		cur, exists := tbl[row.Dest]
		if !exists || cand.Seq > cur.Seq || (cand.Seq == cur.Seq && cand.Metric < cur.Metric) {
			tbl[row.Dest] = cand
			if cand != cur {
				changed = true
			}
		}
		if dv.softTTL > 0 {
			// The advertisement supports whatever live route through this
			// neighbor the table now holds — refresh its lease.
			if e := tbl[row.Dest]; e.NextHop == msg.From && e.Metric < InfMetric {
				dv.refreshed[rcv][row.Dest] = dv.env.Now()
			}
		}
	}
	if changed {
		dv.advertise(rcv)
	}
}

// OnTick implements netsim.Protocol: purge departed members, refresh own
// sequence numbers of nodes whose cluster changed, expire unsupported
// soft-state routes, and flush dirty advertisements.
func (dv *IntraDV) OnTick(now float64) {
	n := dv.env.NumNodes()
	for i := 0; i < n; i++ {
		id := netsim.NodeID(i)
		own := dv.cl.HeadOf(id)
		if own != dv.prevHead[i] {
			// Re-clustered without a link event at this node (e.g. its
			// head resigned): rebuild from scratch.
			dv.prevHead[i] = own
			dv.dirty[i] = true
		}
		tbl := dv.tables[i]
		for dest := range tbl {
			if dest != id && dv.cl.HeadOf(dest) != own {
				delete(tbl, dest)
				if dv.softTTL > 0 {
					delete(dv.refreshed[i], dest)
				}
				dv.dirty[i] = true
			}
		}
		if dv.softTTL > 0 {
			dv.expireStale(id, now)
			if now-dv.lastAdv[i] >= dv.softRefresh {
				dv.dirty[i] = true
			}
		}
		if dv.dirty[i] {
			dv.dirty[i] = false
			// Bump the even self-sequence so stale reports lose.
			dv.ownSeq[i] += 2
			tbl[id] = Entry{Dest: id, NextHop: id, Metric: 0, Seq: dv.ownSeq[i]}
			dv.advertise(id)
		}
	}
}

// expireStale poisons every live route of `at` whose lease ran out: its
// next hop has not advertised support within the TTL, so under a lossy
// medium the route can no longer be assumed valid. The poison re-enters
// the normal DSDV break machinery (odd sequence, infinite metric), so a
// still-working neighbor simply re-announces the route next refresh.
func (dv *IntraDV) expireStale(at netsim.NodeID, now float64) {
	tbl := dv.tables[at]
	for dest, e := range tbl {
		if dest == at || e.Metric >= InfMetric {
			continue
		}
		if now-dv.refreshed[at][dest] > dv.softTTL {
			e.Metric = InfMetric
			if e.Seq%2 == 0 {
				e.Seq++ // destination-issued even → broken odd
			}
			tbl[dest] = e
			delete(dv.refreshed[at], dest)
			dv.dirty[at] = true
		}
	}
}

// markDirty schedules a node for re-advertisement at tick end.
func (dv *IntraDV) markDirty(id netsim.NodeID) {
	dv.dirty[id] = true
}

// advertise broadcasts the node's current vector for its cluster.
func (dv *IntraDV) advertise(from netsim.NodeID) {
	if dv.softTTL > 0 {
		dv.lastAdv[from] = dv.env.Now()
	}
	own := dv.cl.HeadOf(from)
	tbl := dv.tables[from]
	rows := make([]Entry, 0, len(tbl))
	for _, e := range tbl {
		rows = append(rows, e)
	}
	dv.advSeq[from]++
	dv.env.Broadcast(netsim.Message{
		Kind:    netsim.MsgRoute,
		From:    from,
		Bits:    dv.entryBits * float64(len(rows)),
		Seq:     dv.advSeq[from],
		Payload: vectorAd{Cluster: own, Rows: rows},
	})
}

// Lookup returns the node's live table entry for dest, if any
// (unreachable-poisoned entries do not count as live).
func (dv *IntraDV) Lookup(at, dest netsim.NodeID) (Entry, bool) {
	e, ok := dv.tables[at][dest]
	if !ok || e.Metric >= InfMetric {
		return Entry{}, false
	}
	return e, true
}

// TableSize returns the number of live entries at a node.
func (dv *IntraDV) TableSize(at netsim.NodeID) int {
	count := 0
	for _, e := range dv.tables[at] {
		if e.Metric < InfMetric {
			count++
		}
	}
	return count
}

// Route follows next hops from src toward a same-cluster dst, returning
// the forwarding path the distributed tables actually produce, or false
// when no live route exists. Loops abort (they would indicate a protocol
// bug; the convergence test asserts they never happen).
func (dv *IntraDV) Route(src, dst netsim.NodeID) ([]netsim.NodeID, bool) {
	path := []netsim.NodeID{src}
	at := src
	for at != dst {
		e, ok := dv.Lookup(at, dst)
		if !ok {
			return nil, false
		}
		at = e.NextHop
		path = append(path, at)
		if len(path) > InfMetric {
			return nil, false
		}
	}
	return path, true
}
