package routing

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/netsim"
)

// Converged audits the routing-layer convergence condition: for every
// ordered pair of live, same-cluster nodes that are connected through
// their cluster's live subgraph, the distributed distance-vector tables
// must hold a usable route — next-hop chaining from src must reach dst
// without exceeding InfMetric hops (loop-free by construction), and
// every hop must be a live node on a currently-up link. Pairs whose
// cluster is itself split (no path through live members) are exempt:
// no protocol can route across a physical cut, so the audit only
// demands routes the topology actually supports.
//
// The first violation found is returned as a descriptive error; nil
// means the tables have converged onto the topology. alive follows the
// engine convention: nil means every node is up.
func Converged(env netsim.Env, cl *cluster.Maintainer, dv *IntraDV, alive func(netsim.NodeID) bool) error {
	var firstErr error
	auditRoutes(env, cl, dv, alive, func(src netsim.NodeID, err error) bool {
		firstErr = err
		return false // stop at the first violation
	})
	return firstErr
}

// RouteViolations marks every live node that owes at least one route it
// cannot serve (as audited by Converged) in the caller-provided scratch
// slice (len ≥ NumNodes) and returns the number of violating nodes.
// Convergence auditors use the per-node set to distinguish persistent
// damage from the transient table churn that continuous loss and
// delayed delivery produce even in steady state.
func RouteViolations(env netsim.Env, cl *cluster.Maintainer, dv *IntraDV, alive func(netsim.NodeID) bool, bad []bool) int {
	n := env.NumNodes()
	for i := 0; i < n; i++ {
		bad[i] = false
	}
	count := 0
	auditRoutes(env, cl, dv, alive, func(src netsim.NodeID, err error) bool {
		if !bad[src] {
			bad[src] = true
			count++
		}
		return true // keep going: collect every violating source
	})
	return count
}

// auditRoutes walks every owed route and reports violations through
// report(src, err); report returns false to stop the audit early. At
// most one violation is reported per source node.
func auditRoutes(env netsim.Env, cl *cluster.Maintainer, dv *IntraDV, alive func(netsim.NodeID) bool, report func(netsim.NodeID, error) bool) {
	live := func(id netsim.NodeID) bool { return alive == nil || alive(id) }
	n := env.NumNodes()
	for i := 0; i < n; i++ {
		src := netsim.NodeID(i)
		if !live(src) {
			continue
		}
		head := cl.HeadOf(src)
		if head < 0 {
			continue
		}
		keep := func(id netsim.NodeID) bool { return live(id) && cl.HeadOf(id) == head }
		for j := 0; j < n; j++ {
			dst := netsim.NodeID(j)
			if dst == src || !live(dst) || cl.HeadOf(dst) != head {
				continue
			}
			if shortestPath(env, src, dst, keep) == nil {
				continue // cluster physically split: no route owed
			}
			if err := routeUsable(env, dv, live, src, dst, head); err != nil {
				if !report(src, err) {
					return
				}
				break // one violation per source is enough
			}
		}
	}
}

// routeUsable checks one owed route end to end.
func routeUsable(env netsim.Env, dv *IntraDV, live func(netsim.NodeID) bool, src, dst, head netsim.NodeID) error {
	path, ok := dv.Route(src, dst)
	if !ok {
		return fmt.Errorf("routing: no route %d->%d in cluster %d", src, dst, head)
	}
	for k := 0; k+1 < len(path); k++ {
		if !live(path[k+1]) {
			return fmt.Errorf("routing: route %d->%d traverses dead node %d", src, dst, path[k+1])
		}
		if !env.IsNeighbor(path[k], path[k+1]) {
			return fmt.Errorf("routing: route %d->%d hop %d->%d is not a current link", src, dst, path[k], path[k+1])
		}
	}
	return nil
}
