package routing

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/netsim"
)

// dvStack wires clustering + IntraDV onto a simulator.
func dvStack(t *testing.T, s *netsim.Sim) (*cluster.Maintainer, *IntraDV) {
	t.Helper()
	m, err := cluster.NewMaintainer(cluster.LID{}, 128)
	if err != nil {
		t.Fatal(err)
	}
	dv, err := NewIntraDV(m, 128)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Register(m, dv); err != nil {
		t.Fatal(err)
	}
	return m, dv
}

func TestNewIntraDVValidation(t *testing.T) {
	if _, err := NewIntraDV(nil, 128); err == nil {
		t.Error("nil maintainer accepted")
	}
	m, err := cluster.NewMaintainer(cluster.LID{}, 128)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewIntraDV(m, 0); err == nil {
		t.Error("zero entry bits accepted")
	}
	dv, err := NewIntraDV(m, 128)
	if err != nil {
		t.Fatal(err)
	}
	if dv.Name() != "routing/intra-dv" {
		t.Error("name wrong")
	}
}

// checkConverged asserts that every node's DV table matches the
// cluster-restricted BFS ground truth: correct reachability set, exact
// metrics, and loop-free next-hop forwarding over existing links.
func checkConverged(t *testing.T, s *netsim.Sim, m *cluster.Maintainer, dv *IntraDV) {
	t.Helper()
	n := s.NumNodes()
	for i := 0; i < n; i++ {
		src := netsim.NodeID(i)
		head := m.HeadOf(src)
		for j := 0; j < n; j++ {
			dst := netsim.NodeID(j)
			if m.HeadOf(dst) != head || src == dst {
				continue
			}
			truth := shortestPath(s, src, dst, func(id netsim.NodeID) bool {
				return m.HeadOf(id) == head
			})
			e, ok := dv.Lookup(src, dst)
			if truth == nil {
				if ok {
					t.Fatalf("node %d has route to unreachable co-member %d: %+v", src, dst, e)
				}
				continue
			}
			if !ok {
				t.Fatalf("node %d missing route to reachable co-member %d (dist %d)",
					src, dst, len(truth)-1)
			}
			if e.Metric != len(truth)-1 {
				t.Fatalf("node %d→%d metric %d, BFS %d", src, dst, e.Metric, len(truth)-1)
			}
			path, ok := dv.Route(src, dst)
			if !ok {
				t.Fatalf("Route(%d,%d) failed with live entry", src, dst)
			}
			if len(path)-1 != e.Metric {
				t.Fatalf("forwarding path length %d != metric %d", len(path)-1, e.Metric)
			}
			for k := 0; k+1 < len(path); k++ {
				if !s.IsNeighbor(path[k], path[k+1]) {
					t.Fatalf("path %v uses missing link %d-%d", path, path[k], path[k+1])
				}
				if m.HeadOf(path[k]) != head {
					t.Fatalf("path %v leaves the cluster at %d", path, path[k])
				}
			}
		}
	}
}

func TestIntraDVConvergesAtStart(t *testing.T) {
	s := newSim(t, mobileConfig(31))
	m, dv := dvStack(t, s)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	checkConverged(t, s, m, dv)
	// Table sizes must equal cluster sizes.
	a := m.Assignment()
	sizes := a.ClusterSizes()
	for i := 0; i < s.NumNodes(); i++ {
		id := netsim.NodeID(i)
		if got, want := dv.TableSize(id), sizes[m.HeadOf(id)]; got != want {
			t.Errorf("node %d table size %d, cluster size %d", i, got, want)
		}
	}
}

// TestIntraDVConvergedTables is the heavyweight check: under sustained
// mobility and re-clustering, tables must be BFS-exact after every tick.
func TestIntraDVConvergedTables(t *testing.T) {
	cfg := mobileConfig(33)
	cfg.N = 80 // the O(N²·m) oracle check is the expensive part
	s := newSim(t, cfg)
	m, dv := dvStack(t, s)
	for step := 0; step < 300; step++ {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
		checkConverged(t, s, m, dv)
	}
}

func TestIntraDVRouteMisses(t *testing.T) {
	s := newSim(t, mobileConfig(35))
	m, dv := dvStack(t, s)
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	// A route to a node in another cluster must not exist.
	var src, dst netsim.NodeID = -1, -1
	for i := 0; i < s.NumNodes() && src < 0; i++ {
		for j := 0; j < s.NumNodes(); j++ {
			if m.HeadOf(netsim.NodeID(i)) != m.HeadOf(netsim.NodeID(j)) {
				src, dst = netsim.NodeID(i), netsim.NodeID(j)
				break
			}
		}
	}
	if src < 0 {
		t.Skip("single cluster")
	}
	if _, ok := dv.Lookup(src, dst); ok {
		t.Error("cross-cluster entry present")
	}
	if _, ok := dv.Route(src, dst); ok {
		t.Error("cross-cluster route found")
	}
	// Self route is trivial.
	if path, ok := dv.Route(src, src); !ok || len(path) != 1 {
		t.Errorf("self route = %v, %v", path, ok)
	}
}

func TestIntraDVMessageAccounting(t *testing.T) {
	s := newSim(t, mobileConfig(37))
	_, dv := dvStack(t, s)
	if err := s.Run(5); err != nil {
		t.Fatal(err)
	}
	tally := s.Tallies().Of(netsim.MsgRoute)
	if tally.Msgs == 0 {
		t.Fatal("no DV advertisements under mobility")
	}
	// Bits are entry-proportional: every message carries ≥ 1 entry of
	// 128 bits.
	if tally.Bits < tally.Msgs*128 {
		t.Errorf("bits %v below one entry per message", tally.Bits)
	}
	_ = dv
}
