package routing

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/simrand"
)

// blackoutMedium is a test medium that delivers everything until the
// test flips blocked, after which every delivery is silently lost while
// topology (and thus link-based detection) is unchanged — the exact
// failure hard-state DV cannot see and soft-state TTLs exist for.
type blackoutMedium struct {
	blocked bool
}

func (m *blackoutMedium) Reset(int, simrand.Source)             {}
func (m *blackoutMedium) Advance(int64)                         {}
func (m *blackoutMedium) Alive(netsim.NodeID) bool              { return true }
func (m *blackoutMedium) Cut(netsim.NodeID, netsim.NodeID) bool { return false }
func (m *blackoutMedium) Deliver(int64, netsim.NodeID, netsim.NodeID) netsim.Fate {
	return netsim.Fate{Drop: m.blocked}
}

// buildDVStack wires hello + clustering + the distributed IntraDV tables
// onto a simulator.
func buildDVStack(t *testing.T, s *netsim.Sim) (*cluster.Maintainer, *IntraDV) {
	t.Helper()
	hello, err := NewHello(64)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.NewMaintainer(cluster.LID{}, 128)
	if err != nil {
		t.Fatal(err)
	}
	dv, err := NewIntraDV(cl, 32)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Register(hello, cl, dv); err != nil {
		t.Fatal(err)
	}
	return cl, dv
}

func TestEnableSoftStateValidation(t *testing.T) {
	mk := func() *IntraDV {
		cl, err := cluster.NewMaintainer(cluster.LID{}, 128)
		if err != nil {
			t.Fatal(err)
		}
		dv, err := NewIntraDV(cl, 32)
		if err != nil {
			t.Fatal(err)
		}
		return dv
	}
	if err := mk().EnableSoftState(0, 1); err == nil {
		t.Error("zero refresh interval accepted")
	}
	if err := mk().EnableSoftState(1, 1); err == nil {
		t.Error("ttl == refresh accepted")
	}
	if err := mk().EnableSoftState(0.5, 2); err != nil {
		t.Errorf("valid soft-state config rejected: %v", err)
	}
}

// TestSoftStateExpiresUnsupportedRoutes is the core soft-state property:
// when the medium silently stops delivering advertisements (links still
// up, so no link event fires), routes must expire within the TTL instead
// of being trusted forever.
func TestSoftStateExpiresUnsupportedRoutes(t *testing.T) {
	med := &blackoutMedium{}
	s, err := netsim.New(netsim.Config{
		N: 2, Side: 1, Range: 2, Dt: 0.1, Seed: 1, Medium: med,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.NewMaintainer(cluster.LID{}, 128)
	if err != nil {
		t.Fatal(err)
	}
	dv, err := NewIntraDV(cl, 32)
	if err != nil {
		t.Fatal(err)
	}
	const refresh, ttl = 0.5, 2.0
	if err := dv.EnableSoftState(refresh, ttl); err != nil {
		t.Fatal(err)
	}
	if err := s.Register(cl, dv); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	// Static pair in range: 0 heads {0, 1}; each routes to the other.
	for i := 0; i < 30; i++ {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := dv.Lookup(0, 1); !ok {
		t.Fatal("route 0→1 missing under working medium")
	}
	if _, ok := dv.Lookup(1, 0); !ok {
		t.Fatal("route 1→0 missing under working medium")
	}

	// Silent blackout: links stay up, every delivery is lost.
	med.blocked = true
	steps := int((ttl + 3*refresh) / 0.1)
	for i := 0; i < steps; i++ {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := dv.Lookup(0, 1); ok {
		t.Error("route 0→1 survived a silent blackout longer than its TTL")
	}
	if _, ok := dv.Lookup(1, 0); ok {
		t.Error("route 1→0 survived a silent blackout longer than its TTL")
	}

	// Recovery: deliveries resume, the next refresh re-announces, and the
	// poisoned routes come back.
	med.blocked = false
	for i := 0; i < steps; i++ {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := dv.Lookup(0, 1); !ok {
		t.Error("route 0→1 not re-learned after the medium recovered")
	}
	if _, ok := dv.Lookup(1, 0); !ok {
		t.Error("route 1→0 not re-learned after the medium recovered")
	}
}

// TestSoftStateIdleUnderIdealMedium pins that enabling soft state under
// the ideal medium never expires a live route: periodic refreshes always
// arrive, so tables keep converging exactly as hard state does.
func TestSoftStateIdleUnderIdealMedium(t *testing.T) {
	s := newSim(t, mobileConfig(9))
	cl, dv := buildDVStack(t, s)
	if err := dv.EnableSoftState(0.5, 2.0); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	// Every member must still hold a live route to its head, and vice
	// versa — expiry must never outrun the refresh under zero loss.
	n := s.NumNodes()
	for i := 0; i < n; i++ {
		id := netsim.NodeID(i)
		h := cl.HeadOf(id)
		if h == id {
			continue
		}
		if _, ok := dv.Lookup(id, h); !ok {
			t.Fatalf("member %d lost its route to head %d under ideal medium", id, h)
		}
		if _, ok := dv.Lookup(h, id); !ok {
			t.Fatalf("head %d lost its route to member %d under ideal medium", h, id)
		}
	}
}

// TestSoftStateRecoversUnderLoss runs the full stack over a lossy medium
// with soft state enabled: tables must keep (re)converging — every
// member/head pair reachable at the end once losses are survivable.
func TestSoftStateRecoversUnderLoss(t *testing.T) {
	inj, err := faults.New(faults.Config{Loss: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	cfg := mobileConfig(13)
	cfg.Medium = inj
	s := newSim(t, cfg)
	cl, dv := buildDVStack(t, s)
	if err := dv.EnableSoftState(0.25, 1.0); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
	// Loss delays convergence, so demand most — not all — pairs routable.
	n := s.NumNodes()
	pairs, live := 0, 0
	for i := 0; i < n; i++ {
		id := netsim.NodeID(i)
		h := cl.HeadOf(id)
		if h == id {
			continue
		}
		pairs++
		if _, ok := dv.Lookup(id, h); ok {
			live++
		}
	}
	if pairs == 0 {
		t.Fatal("degenerate clustering: no members")
	}
	if frac := float64(live) / float64(pairs); frac < 0.8 {
		t.Errorf("only %g of member→head routes live under 20%% loss with soft state", frac)
	}
}
