// Package routing implements the routing substrate of the paper's model:
// HELLO-based neighbor discovery with soft-timer break detection, the
// hybrid routing protocol the analysis assumes (proactive distance-vector
// routing inside each cluster, reactive discovery across clusters), and
// flat DSDV-style and AODV-style baselines used to reproduce the paper's
// motivation that flat proactive routing does not scale.
package routing

import (
	"fmt"
	"math"

	"repro/internal/netsim"
)

// HelloMode selects how HELLO beacons are emitted.
type HelloMode int

const (
	// HelloOnLinkGen sends one beacon per endpoint per new link — the
	// paper's lower bound (Eqn 4): f_hello = λ_gen, with link breaks
	// detected for free by soft timers.
	HelloOnLinkGen HelloMode = iota + 1
	// HelloPeriodic sends one beacon per node every Interval — the
	// conventional implementation the lower bound idealizes.
	HelloPeriodic
)

// Hello is the neighbor-discovery protocol. Besides accounting for HELLO
// traffic it maintains per-node neighbor tables from the beacons it
// actually hears, so tests can verify that the lower-bound beacon rate
// still keeps tables synchronized with the true topology.
type Hello struct {
	mode     HelloMode
	bits     float64
	interval float64 // beacon period for HelloPeriodic
	timeout  float64 // soft-timer expiry for heard neighbors

	env      netsim.Env
	lastSent float64
	// heard[a][b] is the time node a last heard node b's beacon.
	heard []map[netsim.NodeID]float64
	// seqOut[a] is node a's beacon sequence counter; filter rejects
	// stale and duplicated beacons under delaying/reordering media.
	seqOut []uint32
	filter *netsim.SeqFilter
}

var _ netsim.Protocol = (*Hello)(nil)

// NewHello builds the lower-bound (event-driven) HELLO protocol.
func NewHello(bits float64) (*Hello, error) {
	if bits <= 0 {
		return nil, fmt.Errorf("routing: hello size must be positive, got %g", bits)
	}
	return &Hello{mode: HelloOnLinkGen, bits: bits}, nil
}

// NewPeriodicHello builds the conventional periodic HELLO protocol with
// the given beacon interval; neighbors not heard for 2.5 intervals are
// dropped from the table (the usual allowed-loss-of-two-beacons rule).
func NewPeriodicHello(bits, interval float64) (*Hello, error) {
	if bits <= 0 {
		return nil, fmt.Errorf("routing: hello size must be positive, got %g", bits)
	}
	if interval <= 0 {
		return nil, fmt.Errorf("routing: hello interval must be positive, got %g", interval)
	}
	return &Hello{mode: HelloPeriodic, bits: bits, interval: interval, timeout: 2.5 * interval}, nil
}

// Name implements netsim.Protocol.
func (h *Hello) Name() string { return "hello" }

// Start implements netsim.Protocol: every node beacons once so initial
// neighbor tables are populated. The initial burst is not part of the
// steady-state measurements (experiments snapshot tallies after warmup).
func (h *Hello) Start(env netsim.Env) error {
	h.env = env
	h.heard = make([]map[netsim.NodeID]float64, env.NumNodes())
	for i := range h.heard {
		h.heard[i] = make(map[netsim.NodeID]float64)
	}
	h.seqOut = make([]uint32, env.NumNodes())
	h.filter = netsim.NewSeqFilter(env.NumNodes())
	for i := 0; i < env.NumNodes(); i++ {
		h.beacon(netsim.NodeID(i), false)
	}
	return nil
}

// OnLinkEvent implements netsim.Protocol: in lower-bound mode both
// endpoints of a fresh link announce themselves; soft timers cover
// breaks without any transmission.
func (h *Hello) OnLinkEvent(ev netsim.LinkEvent) {
	if h.mode != HelloOnLinkGen {
		return
	}
	if ev.Up {
		h.beacon(ev.A, ev.Border)
		h.beacon(ev.B, ev.Border)
	} else {
		// Soft timer: drop silently on both sides.
		delete(h.heard[ev.A], ev.B)
		delete(h.heard[ev.B], ev.A)
	}
}

// OnMessage implements netsim.Protocol: receiving a HELLO refreshes the
// sender's entry in the receiver's table. Two hardening guards protect
// the table under non-ideal media: stale or duplicated beacons (sequence
// number at or below one already accepted) are rejected, and a beacon
// from a node that is no longer a neighbor is ignored — a delayed frame
// must not resurrect an entry the soft timer already dropped. On the
// ideal medium both guards never fire: same-tick delivery implies the
// sender is a current neighbor and beacons arrive in sequence order.
func (h *Hello) OnMessage(rcv netsim.NodeID, msg netsim.Message) {
	if msg.Kind != netsim.MsgHello {
		return
	}
	if !h.filter.Fresh(rcv, msg.From, msg.Seq) {
		return
	}
	if !h.env.IsNeighbor(rcv, msg.From) {
		return
	}
	h.heard[rcv][msg.From] = h.env.Now()
}

// OnTick implements netsim.Protocol: periodic beaconing and soft-timer
// expiry.
func (h *Hello) OnTick(now float64) {
	if h.mode != HelloPeriodic {
		return
	}
	if now-h.lastSent >= h.interval {
		h.lastSent = now
		for i := 0; i < h.env.NumNodes(); i++ {
			h.beacon(netsim.NodeID(i), false)
		}
	}
	for _, tbl := range h.heard {
		for nb, t := range tbl {
			if now-t > h.timeout {
				delete(tbl, nb)
			}
		}
	}
}

// NextWake implements netsim.Waker. In lower-bound mode OnTick is pure,
// so the wake is +Inf. In periodic mode the next observable action is
// the earlier of the next beacon (lastSent + interval) and the earliest
// soft-timer expiry; expiry is strict (now > t + timeout), so a wake
// landing exactly on t + timeout is a harmless no-op and the event core
// retries one tick later.
func (h *Hello) NextWake(float64) float64 {
	if h.mode != HelloPeriodic {
		return math.Inf(1)
	}
	next := h.lastSent + h.interval
	for _, tbl := range h.heard {
		for _, t := range tbl {
			if e := t + h.timeout; e < next {
				next = e
			}
		}
	}
	return next
}

// beacon broadcasts one sequence-stamped HELLO from the given node.
func (h *Hello) beacon(from netsim.NodeID, border bool) {
	h.seqOut[from]++
	h.env.Broadcast(netsim.Message{
		Kind:   netsim.MsgHello,
		From:   from,
		Bits:   h.bits,
		Border: border,
		Seq:    h.seqOut[from],
	})
}

// Knows reports whether node a currently has node b in its neighbor
// table.
func (h *Hello) Knows(a, b netsim.NodeID) bool {
	_, ok := h.heard[a][b]
	return ok
}

// TableSize returns the current neighbor-table size of a node.
func (h *Hello) TableSize(id netsim.NodeID) int { return len(h.heard[id]) }
