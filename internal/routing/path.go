package routing

import (
	"repro/internal/cluster"
	"repro/internal/netsim"
)

// shortestPath runs a breadth-first search from src to dst over the
// topology, visiting only nodes accepted by keep (nil keeps everything;
// src and dst are always kept). It returns the node sequence including
// both endpoints, or nil when dst is unreachable.
func shortestPath(topo cluster.Topology, src, dst netsim.NodeID, keep func(netsim.NodeID) bool) []netsim.NodeID {
	if src == dst {
		return []netsim.NodeID{src}
	}
	n := topo.NumNodes()
	prev := make([]netsim.NodeID, n)
	for i := range prev {
		prev[i] = -1
	}
	prev[src] = src
	frontier := []netsim.NodeID{src}
	for len(frontier) > 0 {
		var next []netsim.NodeID
		for _, u := range frontier {
			for _, v := range topo.Neighbors(u) {
				if prev[v] >= 0 {
					continue
				}
				if v != dst && keep != nil && !keep(v) {
					continue
				}
				prev[v] = u
				if v == dst {
					return buildPath(prev, src, dst)
				}
				next = append(next, v)
			}
		}
		frontier = next
	}
	return nil
}

// buildPath reconstructs the src→dst node sequence from the predecessor
// array.
func buildPath(prev []netsim.NodeID, src, dst netsim.NodeID) []netsim.NodeID {
	var rev []netsim.NodeID
	for at := dst; ; at = prev[at] {
		rev = append(rev, at)
		if at == src {
			break
		}
	}
	path := make([]netsim.NodeID, len(rev))
	for i, id := range rev {
		path[len(rev)-1-i] = id
	}
	return path
}

// pathAlive reports whether every consecutive pair of the path is still
// linked.
func pathAlive(env netsim.Env, path []netsim.NodeID) bool {
	for i := 0; i+1 < len(path); i++ {
		if !env.IsNeighbor(path[i], path[i+1]) {
			return false
		}
	}
	return len(path) > 0
}
