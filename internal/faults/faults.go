// Package faults is the deterministic fault-injection layer of the
// simulator. It implements netsim.Medium with six composable fault
// models:
//
//   - Bernoulli loss: every point delivery (one broadcast × one receiving
//     neighbor) is lost independently with probability Loss.
//   - Gilbert–Elliott burst loss: each directed link carries a two-state
//     Markov channel (Good/Bad) advanced once per tick; deliveries are
//     lost with the state's loss probability, producing the time-correlated
//     loss bursts real radio channels exhibit.
//   - Node churn: each node alternates up/down with geometrically
//     distributed sojourn times. A down node contributes no adjacency, so
//     crashes and recoveries surface to protocols as ordinary link events.
//   - Delay/jitter: every delivered frame is parked by the engine for
//     floor(BaseTicks + u·JitterTicks) ticks. Frames with different
//     realized delays overtake each other, so jitter doubles as the
//     reordering model.
//   - Duplication: a delivered frame spawns a second copy with
//     probability DupProb; the copy draws its own independent delay, so
//     duplicates arrive at a different time than the original.
//   - Partition: every PeriodTicks a fresh random bipartition of the
//     nodes (a moving cut) severs all links between the two sides for
//     DurationTicks, then heals — the transient split-network regime
//     cluster maintenance must converge through.
//
// Every decision is a pure function of the run's master seed and the call
// coordinates (delivery sequence number, link endpoints, tick) via
// counter-based simrand draws: no draw depends on draw order, map
// iteration or worker scheduling, so runs stay bit-for-bit reproducible
// and sweep points stay independent. With the zero Config the injector is
// a transparent no-op, and a nil netsim.Config.Medium skips it entirely —
// the ideal path is unchanged byte-for-byte.
package faults

import (
	"fmt"
	"math"

	"repro/internal/netsim"
	"repro/internal/simrand"
)

// GilbertElliott parameterizes the two-state burst-loss channel. The
// chain starts in the Good state and is advanced once per tick per
// (lazily materialized) directed link.
type GilbertElliott struct {
	// PGoodBad is the per-tick transition probability Good→Bad.
	PGoodBad float64
	// PBadGood is the per-tick transition probability Bad→Good.
	PBadGood float64
	// LossGood is the per-delivery loss probability in the Good state.
	LossGood float64
	// LossBad is the per-delivery loss probability in the Bad state.
	LossBad float64
}

// enabled reports whether the channel differs from the ideal medium.
func (g GilbertElliott) enabled() bool {
	return g.PGoodBad > 0 || g.LossGood > 0 || g.LossBad > 0
}

// Churn parameterizes node crash/recover schedules: independent
// alternating up/down sojourns with geometric tick counts (the discrete
// analogue of exponential on/off times). Zero values disable churn.
type Churn struct {
	// MeanUpTicks is the mean number of ticks a node stays up.
	MeanUpTicks float64
	// MeanDownTicks is the mean number of ticks a node stays down.
	MeanDownTicks float64
}

// enabled reports whether churn is configured.
func (c Churn) enabled() bool { return c.MeanUpTicks > 0 && c.MeanDownTicks > 0 }

// Delay parameterizes the per-delivery latency model: each delivered
// frame is parked for floor(BaseTicks + u·JitterTicks) ticks, u uniform
// in [0, 1) and drawn per delivery, so jitter produces reordering. The
// zero value delivers within the same tick — the ideal timing.
type Delay struct {
	// BaseTicks is the deterministic latency floor, in ticks.
	BaseTicks float64
	// JitterTicks is the width of the uniform jitter added on top.
	JitterTicks float64
}

// enabled reports whether any latency is configured.
func (d Delay) enabled() bool { return d.BaseTicks > 0 || d.JitterTicks > 0 }

// Partition parameterizes transient network splits: every PeriodTicks a
// fresh random bipartition of the nodes severs all links between the two
// sides for DurationTicks (starting at the period boundary), then heals
// for the remainder of the period. Each window redraws the cut, so the
// partition "moves" across the network. Zero values disable partitions.
type Partition struct {
	// PeriodTicks is the distance between consecutive partition onsets.
	PeriodTicks int64
	// DurationTicks is how long each partition lasts; it must be shorter
	// than the period so the network always heals before the next onset.
	DurationTicks int64
}

// enabled reports whether partitions are configured.
func (p Partition) enabled() bool { return p.PeriodTicks > 0 && p.DurationTicks > 0 }

// Config selects which faults the injector applies. The zero value is a
// transparent no-op medium.
type Config struct {
	// Loss is the independent per-delivery Bernoulli loss probability.
	Loss float64
	// Burst layers a Gilbert–Elliott channel on top of (or instead of)
	// Bernoulli loss.
	Burst GilbertElliott
	// Churn crashes and recovers nodes.
	Churn Churn
	// Delay parks delivered frames for a (possibly jittered) number of
	// ticks, reordering traffic across ticks.
	Delay Delay
	// DupProb duplicates each delivered frame with this probability; the
	// copy draws its own independent delay.
	DupProb float64
	// Partition periodically severs the adjacency along a moving cut.
	Partition Partition
}

// Active reports whether the configuration injects any fault at all.
func (c Config) Active() bool {
	return c.Loss > 0 || c.Burst.enabled() || c.Churn.enabled() ||
		c.Delay.enabled() || c.DupProb > 0 || c.Partition.enabled()
}

// Validate rejects probabilities outside [0, 1) resp. [0, 1] and
// non-finite or negative churn means.
func (c Config) Validate() error {
	if math.IsNaN(c.Loss) || c.Loss < 0 || c.Loss >= 1 {
		return fmt.Errorf("faults: loss probability must be in [0, 1), got %g", c.Loss)
	}
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"burst p(good→bad)", c.Burst.PGoodBad},
		{"burst p(bad→good)", c.Burst.PBadGood},
		{"burst loss (good)", c.Burst.LossGood},
		{"burst loss (bad)", c.Burst.LossBad},
	} {
		if math.IsNaN(p.v) || p.v < 0 || p.v > 1 {
			return fmt.Errorf("faults: %s must be in [0, 1], got %g", p.name, p.v)
		}
	}
	if c.Burst.enabled() && c.Burst.PBadGood <= 0 && c.Burst.PGoodBad > 0 {
		return fmt.Errorf("faults: burst channel can never leave the bad state (p(bad→good) = 0)")
	}
	if c.Burst.LossBad >= 1 && c.Burst.PBadGood <= 0 && c.Burst.PGoodBad > 0 {
		return fmt.Errorf("faults: burst channel would lose every delivery forever")
	}
	for _, m := range []struct {
		name string
		v    float64
	}{
		{"mean up ticks", c.Churn.MeanUpTicks},
		{"mean down ticks", c.Churn.MeanDownTicks},
	} {
		if math.IsNaN(m.v) || math.IsInf(m.v, 0) || m.v < 0 {
			return fmt.Errorf("faults: %s must be finite and non-negative, got %g", m.name, m.v)
		}
	}
	if (c.Churn.MeanUpTicks > 0) != (c.Churn.MeanDownTicks > 0) {
		return fmt.Errorf("faults: churn needs both mean up and mean down ticks, got %+v", c.Churn)
	}
	if c.Churn.enabled() && c.Churn.MeanUpTicks < 1 {
		return fmt.Errorf("faults: mean up ticks must be ≥ 1, got %g", c.Churn.MeanUpTicks)
	}
	for _, d := range []struct {
		name string
		v    float64
	}{
		{"delay base ticks", c.Delay.BaseTicks},
		{"delay jitter ticks", c.Delay.JitterTicks},
	} {
		if math.IsNaN(d.v) || math.IsInf(d.v, 0) || d.v < 0 {
			return fmt.Errorf("faults: %s must be finite and non-negative, got %g", d.name, d.v)
		}
	}
	if max := c.Delay.BaseTicks + c.Delay.JitterTicks; max > netsim.MaxDelayTicks {
		return fmt.Errorf("faults: delay base+jitter must not exceed %d ticks, got %g",
			netsim.MaxDelayTicks, max)
	}
	if math.IsNaN(c.DupProb) || c.DupProb < 0 || c.DupProb >= 1 {
		return fmt.Errorf("faults: duplication probability must be in [0, 1), got %g", c.DupProb)
	}
	if c.Partition.PeriodTicks < 0 || c.Partition.DurationTicks < 0 {
		return fmt.Errorf("faults: partition period and duration must be non-negative, got %+v", c.Partition)
	}
	if (c.Partition.PeriodTicks > 0) != (c.Partition.DurationTicks > 0) {
		return fmt.Errorf("faults: partition needs both a period and a non-zero duration, got %+v", c.Partition)
	}
	if c.Partition.enabled() && c.Partition.DurationTicks >= c.Partition.PeriodTicks {
		return fmt.Errorf("faults: partition duration must be shorter than its period, got %+v", c.Partition)
	}
	return nil
}

// geState is the lazily materialized per-directed-link channel state.
type geState struct {
	bad  bool
	tick int64 // last tick the chain was advanced to
}

// Injector implements netsim.Medium. Construct with New, hand it to
// netsim.Config.Medium, and the engine binds it to the run via Reset.
// An Injector must not be shared between concurrent simulations: sweep
// points each build their own.
type Injector struct {
	cfg     Config
	enabled bool

	n        int
	tick     int64
	lossSrc  simrand.Source
	burstSrc simrand.Source
	delaySrc simrand.Source
	dupSrc   simrand.Source

	alive      []bool
	nextToggle []int64 // tick at which the node's up/down state flips next
	churnSrc   simrand.Source

	// side holds each node's side of the current partition window's cut
	// (nil when partitions are disabled); sideWindow is the window the
	// assignment was drawn for.
	side       []uint8
	sideWindow int64
	partSrc    simrand.Source

	ge map[uint64]geState
}

var _ netsim.Medium = (*Injector)(nil)

// New builds an injector for the given fault configuration.
func New(cfg Config) (*Injector, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Injector{cfg: cfg, enabled: cfg.Active()}, nil
}

// Reset implements netsim.Medium: bind to a run's node count and fault
// stream family.
func (inj *Injector) Reset(n int, src simrand.Source) {
	inj.n = n
	inj.tick = 0
	inj.lossSrc = src.Split("loss")
	inj.burstSrc = src.Split("burst")
	inj.churnSrc = src.Split("churn")
	inj.delaySrc = src.Split("delay")
	inj.dupSrc = src.Split("dup")
	inj.partSrc = src.Split("partition")
	inj.alive = make([]bool, n)
	for i := range inj.alive {
		inj.alive[i] = true
	}
	inj.ge = nil
	if inj.cfg.Burst.enabled() {
		inj.ge = make(map[uint64]geState)
	}
	inj.nextToggle = nil
	if inj.cfg.Churn.enabled() {
		inj.nextToggle = make([]int64, n)
		for i := range inj.nextToggle {
			inj.nextToggle[i] = inj.sojourn(netsim.NodeID(i), 0, true)
		}
	}
	inj.side = nil
	inj.sideWindow = -1
	if inj.cfg.Partition.enabled() {
		inj.side = make([]uint8, n)
	}
}

// sojourn returns the tick at which a node entering state `up` at tick
// `from` flips again: from + a geometric duration with the configured
// mean, drawn deterministically from the (node, from, up) coordinates.
func (inj *Injector) sojourn(id netsim.NodeID, from int64, up bool) int64 {
	mean := inj.cfg.Churn.MeanDownTicks
	kind := uint64(0)
	if up {
		mean = inj.cfg.Churn.MeanUpTicks
		kind = 1
	}
	u := inj.churnSrc.U01(uint64(id), uint64(from), kind)
	// Geometric via inverse transform; at least one tick in-state so a
	// node never flips twice within a tick.
	d := int64(math.Ceil(math.Log(1-u) / math.Log(1-1/math.Max(mean, 1))))
	if d < 1 {
		d = 1
	}
	return from + d
}

// Advance implements netsim.Medium: move churn schedules and the
// partition window's cut assignment to the given tick.
func (inj *Injector) Advance(tick int64) {
	inj.tick = tick
	if !inj.enabled {
		return
	}
	if inj.nextToggle != nil {
		for i := range inj.nextToggle {
			for inj.nextToggle[i] <= tick {
				inj.alive[i] = !inj.alive[i]
				inj.nextToggle[i] = inj.sojourn(netsim.NodeID(i), inj.nextToggle[i], inj.alive[i])
			}
		}
	}
	if inj.side != nil {
		// Each window redraws every node's side from (window, node)
		// coordinates — the moving cut. Drawing per window, not per tick,
		// keeps Advance O(N) only at onsets and free elsewhere.
		if w := tick / inj.cfg.Partition.PeriodTicks; w != inj.sideWindow {
			inj.sideWindow = w
			for i := range inj.side {
				inj.side[i] = uint8(inj.partSrc.Mix(uint64(w), uint64(i), 0) & 1)
			}
		}
	}
}

// Alive implements netsim.Medium.
func (inj *Injector) Alive(id netsim.NodeID) bool {
	if !inj.enabled || inj.nextToggle == nil {
		return true
	}
	return inj.alive[id]
}

// Cut implements netsim.Medium: true while a partition window is active
// and a, b sit on opposite sides of the window's cut.
func (inj *Injector) Cut(a, b netsim.NodeID) bool {
	if !inj.enabled || inj.side == nil {
		return false
	}
	if inj.tick%inj.cfg.Partition.PeriodTicks >= inj.cfg.Partition.DurationTicks {
		return false
	}
	return inj.side[a] != inj.side[b]
}

// Deliver implements netsim.Medium: loss draws decide survival first,
// then the surviving frame (and its optional duplicate) draws latency.
func (inj *Injector) Deliver(seq int64, from, to netsim.NodeID) netsim.Fate {
	if !inj.enabled {
		return netsim.Fate{}
	}
	if p := inj.cfg.Loss; p > 0 && inj.lossSrc.U01(uint64(seq), uint64(from), uint64(to)) < p {
		return netsim.Fate{Drop: true}
	}
	if inj.ge != nil {
		if inj.burstSrc.U01(uint64(seq), uint64(from), uint64(to)) < inj.burstLoss(from, to) {
			return netsim.Fate{Drop: true}
		}
	}
	var f netsim.Fate
	f.Delay = inj.delay(0, seq, from, to)
	if p := inj.cfg.DupProb; p > 0 && inj.dupSrc.U01(uint64(seq), uint64(from), uint64(to)) < p {
		f.Dup = true
		f.DupDelay = inj.delay(1, seq, from, to)
	}
	return f
}

// delay realizes one latency draw: floor(base + u·jitter) ticks. copy
// disambiguates the primary frame (0) from its duplicate (1) so the two
// draw independent jitter and arrive at different times.
func (inj *Injector) delay(copy uint64, seq int64, from, to netsim.NodeID) int32 {
	d := inj.cfg.Delay
	if !d.enabled() {
		return 0
	}
	v := d.BaseTicks
	if d.JitterTicks > 0 {
		v += d.JitterTicks * inj.delaySrc.U01(uint64(seq)<<1|copy, uint64(from), uint64(to))
	}
	if v > netsim.MaxDelayTicks {
		v = netsim.MaxDelayTicks
	}
	return int32(v)
}

// burstLoss advances the directed link's Gilbert–Elliott chain to the
// current tick and returns its state's loss probability. The chain is
// materialized on first use, starting Good at the tick it is first
// touched; transitions draw from (link, tick) coordinates so the walk is
// independent of delivery order.
func (inj *Injector) burstLoss(from, to netsim.NodeID) float64 {
	key := uint64(from)<<32 | uint64(to)
	st, ok := inj.ge[key]
	if !ok {
		st = geState{tick: inj.tick}
	}
	for st.tick < inj.tick {
		st.tick++
		u := inj.burstSrc.U01(key, uint64(st.tick), math.MaxUint64)
		if st.bad {
			if u < inj.cfg.Burst.PBadGood {
				st.bad = false
			}
		} else {
			if u < inj.cfg.Burst.PGoodBad {
				st.bad = true
			}
		}
	}
	inj.ge[key] = st
	if st.bad {
		return inj.cfg.Burst.LossBad
	}
	return inj.cfg.Burst.LossGood
}

// Disable turns every fault off from the next tick on: all nodes are up
// and every delivery succeeds. Used by convergence experiments to measure
// how fast protocols repair their soft state once the environment calms
// down. (Nodes resurface at the next topology recomputation, i.e. the
// tick after the call.)
func (inj *Injector) Disable() {
	inj.enabled = false
	for i := range inj.alive {
		inj.alive[i] = true
	}
}

// Enabled reports whether the injector is currently applying faults.
func (inj *Injector) Enabled() bool { return inj.enabled }

// AliveCount returns the number of nodes currently up.
func (inj *Injector) AliveCount() int {
	count := 0
	for _, a := range inj.alive {
		if a {
			count++
		}
	}
	return count
}
