package faults

import (
	"math"
	"testing"

	"repro/internal/mobility"
	"repro/internal/netsim"
	"repro/internal/simrand"
)

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Loss: -0.1},
		{Loss: 1},
		{Loss: math.NaN()},
		{Burst: GilbertElliott{PGoodBad: 1.5}},
		{Burst: GilbertElliott{PGoodBad: 0.1, LossBad: 0.5}}, // absorbing bad state
		{Burst: GilbertElliott{LossGood: math.NaN()}},
		{Churn: Churn{MeanUpTicks: 100}},                    // missing down mean
		{Churn: Churn{MeanUpTicks: 0.5, MeanDownTicks: 10}}, // sub-tick sojourn
		{Churn: Churn{MeanUpTicks: math.Inf(1), MeanDownTicks: 1}},
		{Delay: Delay{BaseTicks: -1}},
		{Delay: Delay{JitterTicks: math.NaN()}},
		{Delay: Delay{BaseTicks: math.Inf(1)}},
		{Delay: Delay{BaseTicks: float64(netsim.MaxDelayTicks), JitterTicks: 1}}, // exceeds the ring
		{DupProb: 1},
		{DupProb: -0.1},
		{DupProb: math.NaN()},
		{Partition: Partition{PeriodTicks: 100}},                     // zero-length window
		{Partition: Partition{DurationTicks: 10}},                    // no period
		{Partition: Partition{PeriodTicks: -5, DurationTicks: 1}},    // negative period
		{Partition: Partition{PeriodTicks: 100, DurationTicks: 100}}, // never heals
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", cfg)
		}
	}
	good := []Config{
		{},
		{Loss: 0.999},
		{Burst: GilbertElliott{PGoodBad: 0.1, PBadGood: 0.3, LossGood: 0.01, LossBad: 0.8}},
		{Churn: Churn{MeanUpTicks: 200, MeanDownTicks: 40}},
		{Delay: Delay{BaseTicks: 2, JitterTicks: 3}},
		{Delay: Delay{JitterTicks: 0.5}},
		{DupProb: 0.999},
		{Partition: Partition{PeriodTicks: 100, DurationTicks: 99}},
	}
	for _, cfg := range good {
		if err := cfg.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", cfg, err)
		}
	}
}

func TestZeroConfigIsTransparent(t *testing.T) {
	inj, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	inj.Reset(10, simrand.New(1).Split("faults"))
	inj.Advance(5)
	for id := netsim.NodeID(0); id < 10; id++ {
		if !inj.Alive(id) {
			t.Fatalf("node %d dead under zero config", id)
		}
	}
	for seq := int64(1); seq <= 1000; seq++ {
		if fate := inj.Deliver(seq, 0, 1); fate != (netsim.Fate{}) {
			t.Fatalf("delivery %d got non-ideal fate %+v under zero config", seq, fate)
		}
	}
	if inj.Cut(0, 1) {
		t.Error("zero config cuts links")
	}
	if inj.Enabled() {
		t.Error("zero config reports Enabled")
	}
}

func TestBernoulliLossRateAndDeterminism(t *testing.T) {
	const p = 0.2
	mk := func() *Injector {
		inj, err := New(Config{Loss: p})
		if err != nil {
			t.Fatal(err)
		}
		inj.Reset(50, simrand.New(42).Split("faults"))
		return inj
	}
	a, b := mk(), mk()
	lost := 0
	const trials = 200000
	for seq := int64(1); seq <= trials; seq++ {
		from := netsim.NodeID(seq % 50)
		to := netsim.NodeID((seq * 7) % 50)
		da := a.Deliver(seq, from, to)
		if db := b.Deliver(seq, from, to); da != db {
			t.Fatalf("same seed, same coordinates, different outcome at seq %d", seq)
		}
		if da.Drop {
			lost++
		}
	}
	got := float64(lost) / trials
	if math.Abs(got-p) > 0.01 {
		t.Errorf("empirical loss rate %g, want ≈ %g", got, p)
	}
}

func TestLossDrawIsOrderIndependent(t *testing.T) {
	inj, err := New(Config{Loss: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	inj.Reset(4, simrand.New(7).Split("faults"))
	type key struct {
		seq      int64
		from, to netsim.NodeID
	}
	keys := []key{{1, 0, 1}, {2, 1, 0}, {3, 2, 3}, {4, 0, 2}, {5, 3, 1}}
	first := make(map[key]netsim.Fate)
	for _, k := range keys {
		first[k] = inj.Deliver(k.seq, k.from, k.to)
	}
	// Re-query in reverse order: outcomes must not depend on call order.
	for i := len(keys) - 1; i >= 0; i-- {
		k := keys[i]
		if got := inj.Deliver(k.seq, k.from, k.to); got != first[k] {
			t.Fatalf("outcome for %+v changed on re-query", k)
		}
	}
}

func TestGilbertElliottBurstiness(t *testing.T) {
	// Strongly bursty channel: rare 50-tick-mean bad spells losing 90%,
	// clean good spells. Loss events should clump: the conditional loss
	// probability right after a loss must far exceed the marginal rate.
	inj, err := New(Config{Burst: GilbertElliott{
		PGoodBad: 0.01, PBadGood: 0.02, LossGood: 0, LossBad: 0.9,
	}})
	if err != nil {
		t.Fatal(err)
	}
	inj.Reset(2, simrand.New(3).Split("faults"))
	const ticks = 40000
	losses := 0
	pairs := 0      // consecutive-tick pairs where the first was a loss
	pairLosses := 0 // ... and the second was too
	prev := false
	for tick := int64(1); tick <= ticks; tick++ {
		inj.Advance(tick)
		lost := inj.Deliver(tick, 0, 1).Drop
		if lost {
			losses++
		}
		if prev {
			pairs++
			if lost {
				pairLosses++
			}
		}
		prev = lost
	}
	marginal := float64(losses) / ticks
	if marginal < 0.1 || marginal > 0.6 {
		t.Fatalf("marginal loss rate %g outside plausible band", marginal)
	}
	conditional := float64(pairLosses) / float64(pairs)
	if conditional < 2*marginal {
		t.Errorf("loss after loss %g not bursty vs marginal %g", conditional, marginal)
	}
}

func TestChurnCyclesAndDeterminism(t *testing.T) {
	mk := func() *Injector {
		inj, err := New(Config{Churn: Churn{MeanUpTicks: 100, MeanDownTicks: 25}})
		if err != nil {
			t.Fatal(err)
		}
		inj.Reset(30, simrand.New(11).Split("faults"))
		return inj
	}
	a, b := mk(), mk()
	sawDead, sawRecover := false, false
	wasDead := make([]bool, 30)
	downTicks := 0
	const ticks = 5000
	for tick := int64(1); tick <= ticks; tick++ {
		a.Advance(tick)
		b.Advance(tick)
		for id := netsim.NodeID(0); id < 30; id++ {
			av := a.Alive(id)
			if bv := b.Alive(id); av != bv {
				t.Fatalf("alive state diverged for node %d at tick %d", id, tick)
			}
			if !av {
				sawDead = true
				downTicks++
				wasDead[id] = true
			} else if wasDead[id] {
				sawRecover = true
				wasDead[id] = false
			}
		}
	}
	if !sawDead || !sawRecover {
		t.Fatalf("churn never exercised both directions: dead=%v recover=%v", sawDead, sawRecover)
	}
	// Expected down fraction = 25/(100+25) = 0.2; allow wide slack.
	frac := float64(downTicks) / float64(ticks*30)
	if frac < 0.05 || frac > 0.5 {
		t.Errorf("down fraction %g implausible for 100/25 up/down means", frac)
	}
}

func TestAdvanceSkipsTicksWithoutDrift(t *testing.T) {
	// Jumping straight to tick T must land in the same churn state as
	// advancing one tick at a time (schedules are event-driven).
	mk := func() *Injector {
		inj, err := New(Config{Churn: Churn{MeanUpTicks: 50, MeanDownTicks: 10}})
		if err != nil {
			t.Fatal(err)
		}
		inj.Reset(20, simrand.New(99).Split("faults"))
		return inj
	}
	step, jump := mk(), mk()
	for tick := int64(1); tick <= 1000; tick++ {
		step.Advance(tick)
	}
	jump.Advance(1000)
	for id := netsim.NodeID(0); id < 20; id++ {
		if step.Alive(id) != jump.Alive(id) {
			t.Fatalf("stepwise and jumped advance disagree for node %d", id)
		}
	}
}

func TestDisableRestoresIdealMedium(t *testing.T) {
	inj, err := New(Config{Loss: 0.5, Churn: Churn{MeanUpTicks: 5, MeanDownTicks: 5}})
	if err != nil {
		t.Fatal(err)
	}
	inj.Reset(10, simrand.New(5).Split("faults"))
	for tick := int64(1); tick <= 200; tick++ {
		inj.Advance(tick)
	}
	inj.Disable()
	if inj.Enabled() {
		t.Fatal("Enabled() true after Disable")
	}
	if inj.AliveCount() != 10 {
		t.Fatalf("AliveCount = %d after Disable, want 10", inj.AliveCount())
	}
	for seq := int64(1); seq <= 500; seq++ {
		if fate := inj.Deliver(seq, 0, 1); fate != (netsim.Fate{}) {
			t.Fatalf("non-ideal fate %+v after Disable", fate)
		}
	}
	inj.Advance(201)
	for id := netsim.NodeID(0); id < 10; id++ {
		if !inj.Alive(id) {
			t.Fatalf("node %d dead after Disable", id)
		}
	}
}

// TestEngineDropRateMatchesLoss wires an injector into a real simulation
// and checks the engine-side Dropped tally converges to the configured
// loss probability.
func TestEngineDropRateMatchesLoss(t *testing.T) {
	const p = 0.2
	inj, err := New(Config{Loss: p})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := netsim.New(netsim.Config{
		N: 100, Side: 10, Range: 2, Dt: 0.05, Seed: 17,
		Model:  mobility.EpochRWP{Speed: 0.3, Epoch: 2},
		Medium: inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Register(&chatter{}); err != nil {
		t.Fatal(err)
	}
	if err := sim.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		sim.Step()
	}
	tl := sim.Tallies()
	if tl.Delivered+tl.Dropped < 10000 {
		t.Fatalf("too few delivery attempts (%g) for a rate estimate", tl.Delivered+tl.Dropped)
	}
	if got := tl.DropRate(); math.Abs(got-p) > 0.02 {
		t.Errorf("engine drop rate %g, want ≈ %g", got, p)
	}
}

// TestEngineChurnSuppressesDeadSenders checks that a crashed node's
// broadcasts are suppressed rather than tallied, and that adjacency
// excludes dead nodes.
func TestEngineChurnSuppressesDeadSenders(t *testing.T) {
	inj, err := New(Config{Churn: Churn{MeanUpTicks: 40, MeanDownTicks: 40}})
	if err != nil {
		t.Fatal(err)
	}
	sim, err := netsim.New(netsim.Config{
		N: 60, Side: 6, Range: 2, Dt: 0.05, Seed: 23,
		Model:  mobility.EpochRWP{Speed: 0.2, Epoch: 2},
		Medium: inj,
	})
	if err != nil {
		t.Fatal(err)
	}
	ch := &chatter{}
	if err := sim.Register(ch); err != nil {
		t.Fatal(err)
	}
	if err := sim.Start(); err != nil {
		t.Fatal(err)
	}
	sawDeadIsolated := false
	for i := 0; i < 400; i++ {
		sim.Step()
		for id := netsim.NodeID(0); id < 60; id++ {
			if !inj.Alive(id) && sim.Degree(id) == 0 {
				sawDeadIsolated = true
			}
			if !inj.Alive(id) && sim.Degree(id) != 0 {
				t.Fatalf("dead node %d still has %d neighbors", id, sim.Degree(id))
			}
		}
	}
	if !sawDeadIsolated {
		t.Fatal("churn never took a node down during the run")
	}
	if sim.Tallies().Suppressed == 0 {
		t.Error("no broadcasts were suppressed despite dead senders beaconing")
	}
}

// chatter is a trivial protocol: every node beacons every tick, so the
// medium sees a steady stream of delivery attempts.
type chatter struct {
	env netsim.Env
}

func (c *chatter) Name() string { return "chatter" }

func (c *chatter) Start(env netsim.Env) error {
	c.env = env
	return nil
}

func (c *chatter) OnLinkEvent(netsim.LinkEvent) {}

func (c *chatter) OnMessage(netsim.NodeID, netsim.Message) {}

func (c *chatter) OnTick(float64) {
	for id := 0; id < c.env.NumNodes(); id++ {
		c.env.Broadcast(netsim.Message{Kind: netsim.MsgHello, From: netsim.NodeID(id), Bits: 64})
	}
}
