package faults

import (
	"math"
	"testing"

	"repro/internal/netsim"
	"repro/internal/simrand"
)

// FuzzConfigValidate drives Config.Validate and the constructor over the
// delivery-pipeline parameters (loss, delay/jitter, duplication,
// partition window). The contract under test:
//
//   - Validate never panics and rejects exactly the documented bad
//     shapes: NaN or negative probabilities, dup probability ≥ 1,
//     non-finite or negative delay, base+jitter beyond
//     netsim.MaxDelayTicks, negative or one-sided partition windows,
//     and partitions that never heal (duration ≥ period);
//   - New fails exactly when Validate does — no constructor path
//     around the checks;
//   - every accepted config actually runs: Advance and Deliver stay
//     inside the Fate contract (delays in [0, MaxDelayTicks], Dup only
//     when DupProb > 0, Drop only when a loss model is on) and Cut is
//     symmetric and irreflexive.
func FuzzConfigValidate(f *testing.F) {
	f.Add(0.1, 1.0, 2.0, 0.05, int64(240), int64(40))
	f.Add(0.0, 0.0, 0.0, 0.0, int64(0), int64(0))         // zero config: transparent no-op
	f.Add(0.0, math.NaN(), 0.0, 0.0, int64(0), int64(0))  // NaN delay base
	f.Add(0.0, -1.0, 0.0, 0.0, int64(0), int64(0))        // negative delay base
	f.Add(0.0, 0.0, math.Inf(1), 0.0, int64(0), int64(0)) // +Inf jitter
	f.Add(0.0, 0.0, 0.0, 1.0, int64(0), int64(0))         // dup probability ≥ 1
	f.Add(0.0, 0.0, 0.0, math.NaN(), int64(0), int64(0))  // NaN dup probability
	f.Add(0.0, 0.0, 0.0, 0.0, int64(100), int64(0))       // zero-length partition window
	f.Add(0.0, 0.0, 0.0, 0.0, int64(0), int64(7))         // partition duration without period
	f.Add(0.0, 0.0, 0.0, 0.0, int64(40), int64(40))       // partition never heals
	f.Add(0.0, 400.0, 200.0, 0.0, int64(0), int64(0))     // base+jitter beyond the ring
	f.Add(0.0, 0.0, 0.0, -0.5, int64(-3), int64(-1))      // negative everything
	f.Add(math.Nextafter(1, 0), 0.0, 0.5, 0.0, int64(2), int64(1))

	f.Fuzz(func(t *testing.T, loss, base, jitter, dup float64, period, duration int64) {
		cfg := Config{
			Loss:      loss,
			Delay:     Delay{BaseTicks: base, JitterTicks: jitter},
			DupProb:   dup,
			Partition: Partition{PeriodTicks: period, DurationTicks: duration},
		}
		verr := cfg.Validate()

		badDelay := func(x float64) bool { return math.IsNaN(x) || math.IsInf(x, 0) || x < 0 }
		bad := math.IsNaN(loss) || loss < 0 || loss >= 1 ||
			badDelay(base) || badDelay(jitter) || base+jitter > netsim.MaxDelayTicks ||
			math.IsNaN(dup) || dup < 0 || dup >= 1 ||
			period < 0 || duration < 0 ||
			(period > 0) != (duration > 0) ||
			(period > 0 && duration >= period)
		if bad && verr == nil {
			t.Fatalf("Validate accepted a bad config: %+v", cfg)
		}
		if !bad && verr != nil {
			t.Fatalf("Validate rejected a good config %+v: %v", cfg, verr)
		}

		inj, nerr := New(cfg)
		if (nerr == nil) != (verr == nil) {
			t.Fatalf("New and Validate disagree on %+v: new=%v validate=%v", cfg, nerr, verr)
		}
		if nerr != nil {
			return
		}

		const n = 6
		inj.Reset(n, simrand.New(9))
		seq := int64(0)
		for tick := int64(0); tick < 6; tick++ {
			inj.Advance(tick)
			for from := netsim.NodeID(0); from < n; from++ {
				for to := netsim.NodeID(0); to < n; to++ {
					if to == from {
						continue
					}
					if inj.Cut(from, to) != inj.Cut(to, from) {
						t.Fatalf("Cut(%d,%d) is not symmetric at tick %d under %+v", from, to, tick, cfg)
					}
					fate := inj.Deliver(seq, from, to)
					seq++
					if fate.Delay < 0 || fate.Delay > netsim.MaxDelayTicks ||
						fate.DupDelay < 0 || fate.DupDelay > netsim.MaxDelayTicks {
						t.Fatalf("delay outside [0, %d]: %+v under %+v", netsim.MaxDelayTicks, fate, cfg)
					}
					if fate.Dup && cfg.DupProb == 0 {
						t.Fatalf("duplicate produced with DupProb=0: %+v under %+v", fate, cfg)
					}
					if fate.Drop && cfg.Loss == 0 {
						t.Fatalf("drop produced with no loss model: %+v under %+v", fate, cfg)
					}
				}
			}
			if inj.Cut(0, 0) {
				t.Fatalf("Cut(0,0) true at tick %d under %+v — a node cannot be partitioned from itself", tick, cfg)
			}
		}
	})
}
