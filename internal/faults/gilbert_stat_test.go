package faults

import (
	"math"
	"testing"

	"repro/internal/simrand"
)

// TestGilbertElliottStationaryLoss checks the burst channel against its
// closed-form stationary distribution: a two-state chain with
// transition probabilities pGB, pBG spends a long-run fraction
// πb = pGB/(pGB+pBG) of its time Bad, so the long-run loss rate is
// (1−πb)·LossGood + πb·LossBad.
//
// The tolerance is set from the chain's mixing, not from i.i.d.
// statistics: occupancy samples decorrelate over the relaxation time
// τ = 1/(pGB+pBG) ticks, so across T ticks the effective sample count
// is ≈ T/(2τ) and the occupancy fraction has standard deviation
// ≈ √(πb(1−πb)·2τ/T). The gate allows 5σ on a fixed seed — loose
// enough never to flake on the pinned stream, tight enough that a sign
// flip, a swapped state, or a mis-keyed draw moves the rate by far
// more.
func TestGilbertElliottStationaryLoss(t *testing.T) {
	ticks := int64(200_000)
	if testing.Short() {
		ticks = 60_000
	}
	cases := []struct {
		name string
		ge   GilbertElliott
	}{
		// LossGood=0, LossBad=1 makes the loss count literally the
		// Bad-tick count, isolating the chain itself.
		{"occupancy", GilbertElliott{PGoodBad: 0.05, PBadGood: 0.2, LossGood: 0, LossBad: 1}},
		// Mixed per-state losses exercise the full rate formula.
		{"mixed-loss", GilbertElliott{PGoodBad: 0.02, PBadGood: 0.1, LossGood: 0.05, LossBad: 0.8}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inj, err := New(Config{Burst: tc.ge})
			if err != nil {
				t.Fatal(err)
			}
			inj.Reset(2, simrand.New(0xBEEF))
			lost := int64(0)
			for tick := int64(1); tick <= ticks; tick++ {
				inj.Advance(tick)
				if inj.Deliver(tick, 0, 1).Drop {
					lost++
				}
			}
			pib := tc.ge.PGoodBad / (tc.ge.PGoodBad + tc.ge.PBadGood)
			want := (1-pib)*tc.ge.LossGood + pib*tc.ge.LossBad
			got := float64(lost) / float64(ticks)
			tau := 1 / (tc.ge.PGoodBad + tc.ge.PBadGood)
			sigma := math.Sqrt(pib * (1 - pib) * 2 * tau / float64(ticks))
			// Per-state loss randomness adds at most Bernoulli variance on
			// top of occupancy variance; fold it in.
			sigma += math.Sqrt(want * (1 - want) / float64(ticks))
			tol := 5 * sigma
			t.Logf("loss rate %.5f over %d ticks, stationary prediction %.5f (πb = %.4f, tol %.5f)",
				got, ticks, want, pib, tol)
			if math.Abs(got-want) > tol {
				t.Errorf("loss rate %.5f deviates from the stationary prediction %.5f by more than %.5f",
					got, want, tol)
			}
		})
	}
}

// TestGilbertElliottBurstLength checks the time-correlation the channel
// exists to provide: with LossBad=1 and LossGood=0, maximal runs of
// consecutive lost ticks are exactly Bad sojourns, which are geometric
// with mean 1/pBG. A channel that drew i.i.d. losses at the right rate
// would pass the stationary test yet fail here with mean run length
// ≈ 1/(1−loss) ≈ 1.25.
func TestGilbertElliottBurstLength(t *testing.T) {
	ticks := int64(200_000)
	if testing.Short() {
		ticks = 60_000
	}
	ge := GilbertElliott{PGoodBad: 0.05, PBadGood: 0.2, LossGood: 0, LossBad: 1}
	inj, err := New(Config{Burst: ge})
	if err != nil {
		t.Fatal(err)
	}
	inj.Reset(2, simrand.New(0xF00D))
	var runs, lostTicks int64
	inBurst := false
	for tick := int64(1); tick <= ticks; tick++ {
		inj.Advance(tick)
		if inj.Deliver(tick, 0, 1).Drop {
			lostTicks++
			if !inBurst {
				runs++
				inBurst = true
			}
		} else {
			inBurst = false
		}
	}
	if runs == 0 {
		t.Fatal("no loss bursts observed at all")
	}
	got := float64(lostTicks) / float64(runs)
	want := 1 / ge.PBadGood
	// Geometric run lengths have sd √(1−p)/p; the mean over `runs`
	// bursts gets 5σ of slack on the pinned stream.
	tol := 5 * math.Sqrt(1-ge.PBadGood) / ge.PBadGood / math.Sqrt(float64(runs))
	t.Logf("mean burst length %.3f over %d bursts, geometric prediction %.3f (tol %.3f)", got, runs, want, tol)
	if math.Abs(got-want) > tol {
		t.Errorf("mean burst length %.3f deviates from 1/p(bad→good) = %.3f by more than %.3f", got, want, tol)
	}
}
