// Package cli standardizes process-level behavior across the
// repository's binaries: signal handling, graceful-drain messaging and
// exit codes. Before it existed each command hand-rolled its own
// SIGINT/SIGTERM handling with subtly different outcomes; now every
// binary shares one contract:
//
//   - Exit 0: the run completed. For a server (Server kind) this
//     includes a signal-triggered graceful drain — shutting down on
//     request is a server doing its job, so operators and process
//     supervisors see success.
//   - Exit 1: the run failed for a reason unrelated to signals.
//   - Exit 128+signal (130 for SIGINT, 143 for SIGTERM): a one-shot run
//     (OneShot kind) was interrupted and drained cleanly — in-flight
//     work stopped cooperatively, completed work is journaled, partial
//     artifacts on disk are valid. The non-zero code tells callers the
//     requested work is incomplete; the reserved 128+n form tells them
//     why.
//
// A second signal skips the drain and forces an immediate exit with
// code 128+signal, so a wedged drain can always be escalated.
package cli

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"

	"repro/internal/netsim"
)

// Standardized exit codes (beyond 128+signal for interrupted one-shots).
const (
	ExitOK      = 0
	ExitFailure = 1
)

// Kind selects the drain semantics of a binary.
type Kind int

const (
	// OneShot marks a run-to-completion command (manetsim, figures): a
	// signal drains cleanly but exits 128+signal, because the requested
	// work is incomplete.
	OneShot Kind = iota
	// Server marks a long-lived daemon (manetsimd): a signal-triggered
	// graceful drain is the intended way to stop it, so it exits 0.
	Server
)

// Main runs body with the standardized signal contract and exits the
// process with the resulting code. It is the one-line main() of every
// binary in this repository.
func Main(name string, kind Kind, body func(ctx context.Context, args []string, out io.Writer) error) {
	os.Exit(Run(name, kind, os.Args[1:], os.Stdout, os.Stderr, body))
}

// Run executes body under a context that is cancelled by the first
// SIGINT/SIGTERM, classifies the outcome and emits the standardized
// drain or error message on errw. It returns the process exit code;
// Main passes it to os.Exit. Split from Main so tests can drive the
// whole contract in-process.
func Run(name string, kind Kind, args []string, out, errw io.Writer, body func(ctx context.Context, args []string, out io.Writer) error) int {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	var got atomic.Value // os.Signal received first, if any
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case s := <-sigc:
			got.Store(s)
			cancel()
		case <-done:
			return
		}
		select {
		case s := <-sigc:
			// Second signal: the drain is taking too long for the
			// operator; stop immediately. Journals are fsync-per-append,
			// so even a forced exit loses no acknowledged work.
			fmt.Fprintf(errw, "%s: second %s: forcing exit without drain\n", name, signame(s))
			os.Exit(exitCode(s))
		case <-done:
		}
	}()

	err := body(ctx, args, out)
	sig, _ := got.Load().(os.Signal)

	switch {
	case sig == nil && err == nil:
		return ExitOK
	case sig == nil:
		fmt.Fprintf(errw, "%s: %v\n", name, err)
		return ExitFailure
	case err == nil || DrainClean(err):
		fmt.Fprintf(errw, "%s: drained after %s: in-flight work stopped cooperatively; completed work is journaled and partial artifacts are valid\n",
			name, signame(sig))
		if kind == Server {
			return ExitOK
		}
		return exitCode(sig)
	default:
		// Interrupted, but the error is not the interruption's own
		// signature: report it as a real failure.
		fmt.Fprintf(errw, "%s: interrupted by %s with error: %v\n", name, signame(sig), err)
		return ExitFailure
	}
}

// DrainClean reports whether an error is the expected signature of a
// cooperative cancellation rather than a real failure: context
// cancellation, a deadline racing the cancel, or the engine's
// ErrStopped — anywhere in a wrapped or joined chain.
func DrainClean(err error) bool {
	return errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) ||
		errors.Is(err, netsim.ErrStopped)
}

// exitCode maps a terminating signal to the conventional 128+n code.
func exitCode(s os.Signal) int {
	if n, ok := s.(syscall.Signal); ok {
		return 128 + int(n)
	}
	return ExitFailure
}

// signame renders a signal for drain messages (SIGINT, SIGTERM).
func signame(s os.Signal) string {
	switch s {
	case os.Interrupt:
		return "SIGINT"
	case syscall.SIGTERM:
		return "SIGTERM"
	default:
		return s.String()
	}
}
