package cli

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/netsim"
)

func TestRunSuccess(t *testing.T) {
	var out, errw strings.Builder
	code := Run("demo", OneShot, []string{"a"}, &out, &errw,
		func(ctx context.Context, args []string, w io.Writer) error {
			fmt.Fprintf(w, "args=%v", args)
			return nil
		})
	if code != ExitOK {
		t.Errorf("exit code %d, want %d", code, ExitOK)
	}
	if out.String() != "args=[a]" {
		t.Errorf("out = %q", out.String())
	}
	if errw.Len() != 0 {
		t.Errorf("unexpected stderr: %q", errw.String())
	}
}

func TestRunFailure(t *testing.T) {
	var out, errw strings.Builder
	code := Run("demo", OneShot, nil, &out, &errw,
		func(context.Context, []string, io.Writer) error {
			return errors.New("boom")
		})
	if code != ExitFailure {
		t.Errorf("exit code %d, want %d", code, ExitFailure)
	}
	if !strings.Contains(errw.String(), "demo: boom") {
		t.Errorf("stderr = %q", errw.String())
	}
}

// signalBody blocks until the run context is cancelled, then returns
// the interruption's own signature, like a drained sweep does.
func signalBody(ctx context.Context, _ []string, _ io.Writer) error {
	select {
	case <-ctx.Done():
		return fmt.Errorf("sweep interrupted: %w", ctx.Err())
	case <-time.After(10 * time.Second):
		return errors.New("signal never arrived")
	}
}

func TestRunDrainOneShot(t *testing.T) {
	var out, errw strings.Builder
	code := Run("demo", OneShot, nil, &out, &errw,
		func(ctx context.Context, args []string, w io.Writer) error {
			if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
				return err
			}
			return signalBody(ctx, args, w)
		})
	if code != 130 {
		t.Errorf("exit code %d, want 130 (128+SIGINT)", code)
	}
	if !strings.Contains(errw.String(), "drained after SIGINT") {
		t.Errorf("stderr missing standardized drain message: %q", errw.String())
	}
}

func TestRunDrainServerExitsZero(t *testing.T) {
	var out, errw strings.Builder
	code := Run("demod", Server, nil, &out, &errw,
		func(ctx context.Context, args []string, w io.Writer) error {
			if err := syscall.Kill(syscall.Getpid(), syscall.SIGTERM); err != nil {
				return err
			}
			<-ctx.Done()
			return nil
		})
	if code != ExitOK {
		t.Errorf("exit code %d, want %d (server drain is success)", code, ExitOK)
	}
	if !strings.Contains(errw.String(), "drained after SIGTERM") {
		t.Errorf("stderr missing standardized drain message: %q", errw.String())
	}
}

func TestRunInterruptedWithRealFailure(t *testing.T) {
	var out, errw strings.Builder
	code := Run("demo", OneShot, nil, &out, &errw,
		func(ctx context.Context, _ []string, _ io.Writer) error {
			if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
				return err
			}
			<-ctx.Done()
			return errors.New("disk on fire")
		})
	if code != ExitFailure {
		t.Errorf("exit code %d, want %d", code, ExitFailure)
	}
	if !strings.Contains(errw.String(), "disk on fire") {
		t.Errorf("stderr = %q", errw.String())
	}
}

func TestDrainClean(t *testing.T) {
	clean := []error{
		context.Canceled,
		fmt.Errorf("wrap: %w", context.Canceled),
		errors.Join(errors.New("point 3 failed"), fmt.Errorf("interrupted: %w", context.Canceled)),
		netsim.ErrStopped,
		context.DeadlineExceeded,
	}
	for _, err := range clean {
		if !DrainClean(err) {
			t.Errorf("DrainClean(%v) = false", err)
		}
	}
	if DrainClean(errors.New("boom")) {
		t.Error("DrainClean accepted an unrelated error")
	}
	if DrainClean(nil) {
		t.Error("DrainClean accepted nil")
	}
}
