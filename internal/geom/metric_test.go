package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mustMetric(t *testing.T, kind MetricKind, side float64) Metric {
	t.Helper()
	m, err := NewMetric(kind, side)
	if err != nil {
		t.Fatalf("NewMetric(%v, %v): %v", kind, side, err)
	}
	return m
}

func TestNewMetricValidation(t *testing.T) {
	tests := []struct {
		name    string
		kind    MetricKind
		side    float64
		wantErr bool
	}{
		{"square ok", MetricSquare, 10, false},
		{"torus ok", MetricTorus, 1, false},
		{"zero side", MetricSquare, 0, true},
		{"negative side", MetricTorus, -3, true},
		{"bad kind", MetricKind(99), 10, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, err := NewMetric(tt.kind, tt.side)
			if gotErr := err != nil; gotErr != tt.wantErr {
				t.Errorf("err = %v, wantErr = %v", err, tt.wantErr)
			}
		})
	}
}

func TestMetricKindString(t *testing.T) {
	if MetricSquare.String() != "square" || MetricTorus.String() != "torus" {
		t.Errorf("unexpected names: %v %v", MetricSquare, MetricTorus)
	}
	if got := MetricKind(7).String(); got != "MetricKind(7)" {
		t.Errorf("unknown kind String = %q", got)
	}
}

func TestSquareMetricIsEuclidean(t *testing.T) {
	m := mustMetric(t, MetricSquare, 10)
	p := Vec2{1, 1}
	q := Vec2{9, 9}
	want := p.Dist(q)
	if got := m.Dist(p, q); !almostEq(got, want, 1e-12) {
		t.Errorf("Dist = %v, want %v", got, want)
	}
}

func TestTorusMetricWrapsShortWay(t *testing.T) {
	m := mustMetric(t, MetricTorus, 10)
	p := Vec2{0.5, 5}
	q := Vec2{9.5, 5}
	if got := m.Dist(p, q); !almostEq(got, 1, 1e-12) {
		t.Errorf("torus Dist = %v, want 1", got)
	}
	// Diagonal wrap.
	p = Vec2{0.5, 0.5}
	q = Vec2{9.5, 9.5}
	if got := m.Dist(p, q); !almostEq(got, math.Sqrt2, 1e-12) {
		t.Errorf("torus diagonal Dist = %v, want √2", got)
	}
}

func TestTorusNeverExceedsSquare(t *testing.T) {
	sq := mustMetric(t, MetricSquare, 7)
	to := mustMetric(t, MetricTorus, 7)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		p := Vec2{rng.Float64() * 7, rng.Float64() * 7}
		q := Vec2{rng.Float64() * 7, rng.Float64() * 7}
		if to.Dist2(p, q) > sq.Dist2(p, q)+1e-9 {
			t.Fatalf("torus dist %v exceeds square dist %v for %v %v",
				to.Dist(p, q), sq.Dist(p, q), p, q)
		}
	}
}

func TestWrapInRegion(t *testing.T) {
	m := mustMetric(t, MetricTorus, 10)
	tests := []struct {
		in      Vec2
		want    Vec2
		wrapped bool
	}{
		{Vec2{5, 5}, Vec2{5, 5}, false},
		{Vec2{0, 0}, Vec2{0, 0}, false},
		{Vec2{10, 5}, Vec2{0, 5}, true},
		{Vec2{-1, 5}, Vec2{9, 5}, true},
		{Vec2{12.5, -0.5}, Vec2{2.5, 9.5}, true},
		{Vec2{25, 5}, Vec2{5, 5}, true},
	}
	for _, tt := range tests {
		got, wrapped := m.Wrap(tt.in)
		if !almostEq(got.X, tt.want.X, 1e-9) || !almostEq(got.Y, tt.want.Y, 1e-9) || wrapped != tt.wrapped {
			t.Errorf("Wrap(%v) = %v,%v want %v,%v", tt.in, got, wrapped, tt.want, tt.wrapped)
		}
		if !m.Contains(got) {
			t.Errorf("Wrap(%v) = %v not contained in region", tt.in, got)
		}
	}
}

func TestMetricAccessors(t *testing.T) {
	m := mustMetric(t, MetricTorus, 42)
	if m.Kind() != MetricTorus || m.Side() != 42 {
		t.Errorf("accessors: kind=%v side=%v", m.Kind(), m.Side())
	}
}

func TestPropertyTorusMetricAxioms(t *testing.T) {
	m := mustMetric(t, MetricTorus, 100)
	gen := func(x float64) float64 {
		v := math.Mod(math.Abs(clampFinite(x)), 100)
		return v
	}
	symmetry := func(ax, ay, bx, by float64) bool {
		p := Vec2{gen(ax), gen(ay)}
		q := Vec2{gen(bx), gen(by)}
		return almostEq(m.Dist(p, q), m.Dist(q, p), 1e-9)
	}
	if err := quick.Check(symmetry, nil); err != nil {
		t.Errorf("symmetry: %v", err)
	}
	triangle := func(ax, ay, bx, by, cx, cy float64) bool {
		p := Vec2{gen(ax), gen(ay)}
		q := Vec2{gen(bx), gen(by)}
		s := Vec2{gen(cx), gen(cy)}
		return m.Dist(p, q) <= m.Dist(p, s)+m.Dist(s, q)+1e-9
	}
	if err := quick.Check(triangle, nil); err != nil {
		t.Errorf("triangle inequality: %v", err)
	}
	identity := func(ax, ay float64) bool {
		p := Vec2{gen(ax), gen(ay)}
		return m.Dist(p, p) == 0
	}
	if err := quick.Check(identity, nil); err != nil {
		t.Errorf("identity: %v", err)
	}
	bounded := func(ax, ay, bx, by float64) bool {
		p := Vec2{gen(ax), gen(ay)}
		q := Vec2{gen(bx), gen(by)}
		// Max torus distance is side·√2/2.
		return m.Dist(p, q) <= 100*math.Sqrt2/2+1e-9
	}
	if err := quick.Check(bounded, nil); err != nil {
		t.Errorf("boundedness: %v", err)
	}
}

func TestPropertyWrapIdempotent(t *testing.T) {
	m := mustMetric(t, MetricSquare, 9)
	f := func(x, y float64) bool {
		p := Vec2{clampFinite(x), clampFinite(y)}
		w1, _ := m.Wrap(p)
		w2, wrapped2 := m.Wrap(w1)
		return !wrapped2 && w1 == w2 && m.Contains(w1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
