package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	return math.Abs(a-b) <= tol
}

func TestVecBasicOps(t *testing.T) {
	v := Vec2{3, 4}
	w := Vec2{-1, 2}

	if got := v.Add(w); got != (Vec2{2, 6}) {
		t.Errorf("Add = %v, want (2, 6)", got)
	}
	if got := v.Sub(w); got != (Vec2{4, 2}) {
		t.Errorf("Sub = %v, want (4, 2)", got)
	}
	if got := v.Scale(2); got != (Vec2{6, 8}) {
		t.Errorf("Scale = %v, want (6, 8)", got)
	}
	if got := v.Dot(w); got != 5 {
		t.Errorf("Dot = %v, want 5", got)
	}
	if got := v.Norm(); got != 5 {
		t.Errorf("Norm = %v, want 5", got)
	}
	if got := v.Norm2(); got != 25 {
		t.Errorf("Norm2 = %v, want 25", got)
	}
	if got := v.Dist(w); !almostEq(got, math.Hypot(4, 2), 1e-12) {
		t.Errorf("Dist = %v", got)
	}
	if got := v.Dist2(w); got != 20 {
		t.Errorf("Dist2 = %v, want 20", got)
	}
}

func TestVecUnit(t *testing.T) {
	u := Vec2{3, 4}.Unit()
	if !almostEq(u.Norm(), 1, 1e-12) {
		t.Errorf("Unit norm = %v, want 1", u.Norm())
	}
	if got := (Vec2{}).Unit(); got != (Vec2{}) {
		t.Errorf("Unit of zero = %v, want zero", got)
	}
}

func TestHeadingRoundTrip(t *testing.T) {
	for _, theta := range []float64{0, 0.3, math.Pi / 2, -math.Pi / 2, 3, -3} {
		h := Heading(theta)
		if !almostEq(h.Norm(), 1, 1e-12) {
			t.Errorf("Heading(%v) norm = %v", theta, h.Norm())
		}
		if !almostEq(h.Angle(), theta, 1e-12) {
			t.Errorf("Heading(%v).Angle() = %v", theta, h.Angle())
		}
	}
}

func TestVecString(t *testing.T) {
	if got := (Vec2{1.5, -2}).String(); got != "(1.5, -2)" {
		t.Errorf("String = %q", got)
	}
}

func TestVecPropertyNormTriangle(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a := Vec2{clampFinite(ax), clampFinite(ay)}
		b := Vec2{clampFinite(bx), clampFinite(by)}
		// Triangle inequality with small slack for float rounding.
		return a.Add(b).Norm() <= a.Norm()+b.Norm()+1e-9*(1+a.Norm()+b.Norm())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVecPropertyDistSymmetric(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a := Vec2{clampFinite(ax), clampFinite(ay)}
		b := Vec2{clampFinite(bx), clampFinite(by)}
		return a.Dist(b) == b.Dist(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// clampFinite maps arbitrary float64 quick-check inputs into a finite,
// moderate range so products cannot overflow.
func clampFinite(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	return math.Mod(x, 1e6)
}
