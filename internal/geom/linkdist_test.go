package geom

import (
	"math"
	"math/rand"
	"testing"
)

func TestLinkDistCDFBoundaries(t *testing.T) {
	const d = 5.0
	if got := LinkDistCDF(-1, d); got != 0 {
		t.Errorf("F(-1) = %v, want 0", got)
	}
	if got := LinkDistCDF(0, d); got != 0 {
		t.Errorf("F(0) = %v, want 0", got)
	}
	if got := LinkDistCDF(d*math.Sqrt2, d); got != 1 {
		t.Errorf("F(d√2) = %v, want 1", got)
	}
	if got := LinkDistCDF(100*d, d); got != 1 {
		t.Errorf("F(100d) = %v, want 1", got)
	}
	if got := LinkDistCDF(1, 0); got != 1 {
		t.Errorf("degenerate square F = %v, want 1", got)
	}
}

func TestLinkDistCDFKnownValues(t *testing.T) {
	// F(d) on the main branch: π − 8/3 + 1/2 ≈ 0.97533.
	want := math.Pi - 8.0/3.0 + 0.5
	if got := LinkDistCDF(1, 1); !almostEq(got, want, 1e-12) {
		t.Errorf("F(1;1) = %v, want %v", got, want)
	}
	// Scale invariance: F(x; d) depends only on x/d.
	if a, b := LinkDistCDF(0.3, 1), LinkDistCDF(3, 10); !almostEq(a, b, 1e-12) {
		t.Errorf("scale invariance broken: %v vs %v", a, b)
	}
}

func TestLinkDistCDFMonotoneAndContinuous(t *testing.T) {
	const d = 1.0
	prev := 0.0
	for i := 0; i <= 2000; i++ {
		x := float64(i) / 2000 * d * math.Sqrt2
		f := LinkDistCDF(x, d)
		if f < prev-1e-12 {
			t.Fatalf("CDF decreased at x=%v: %v < %v", x, f, prev)
		}
		if f < 0 || f > 1 {
			t.Fatalf("CDF out of [0,1] at x=%v: %v", x, f)
		}
		// Continuity: adjacent samples close (grid is fine).
		if f-prev > 0.01 {
			t.Fatalf("CDF jump at x=%v: %v -> %v", x, prev, f)
		}
		prev = f
	}
	if prev < 0.9999 {
		t.Errorf("CDF at upper support = %v, want ≈1", prev)
	}
}

func TestLinkDistPDFIntegratesToOne(t *testing.T) {
	total := simpson(func(x float64) float64 { return LinkDistPDF(x, 1) }, 0, math.Sqrt2, 4000)
	if !almostEq(total, 1, 1e-6) {
		t.Errorf("∫pdf = %v, want 1", total)
	}
}

func TestLinkDistPDFMatchesCDFDerivative(t *testing.T) {
	const d = 2.0
	const h = 1e-6
	for _, x := range []float64{0.2, 0.7, 1.3, 1.9, 2.3, 2.7} {
		num := (LinkDistCDF(x+h, d) - LinkDistCDF(x-h, d)) / (2 * h)
		pdf := LinkDistPDF(x, d)
		if !almostEq(num, pdf, 1e-4) {
			t.Errorf("pdf(%v) = %v, numeric derivative = %v", x, pdf, num)
		}
	}
}

func TestLinkDistCDFMonteCarlo(t *testing.T) {
	// Empirical CDF from 200k random point pairs in the unit square.
	rng := rand.New(rand.NewSource(7))
	const samples = 200000
	dists := make([]float64, samples)
	for i := range dists {
		p := Vec2{rng.Float64(), rng.Float64()}
		q := Vec2{rng.Float64(), rng.Float64()}
		dists[i] = p.Dist(q)
	}
	for _, x := range []float64{0.1, 0.25, 0.5, 0.75, 1.0, 1.2, 1.35} {
		count := 0
		for _, dd := range dists {
			if dd <= x {
				count++
			}
		}
		emp := float64(count) / samples
		ana := LinkDistCDF(x, 1)
		if !almostEq(emp, ana, 0.005) {
			t.Errorf("x=%v: empirical %v vs analytical %v", x, emp, ana)
		}
	}
}

func TestDiscOverlapProb(t *testing.T) {
	want := 1 - 3*math.Sqrt(3)/(4*math.Pi)
	if got := DiscOverlapProb(); !almostEq(got, want, 1e-15) {
		t.Errorf("DiscOverlapProb = %v, want %v", got, want)
	}
	// Monte Carlo confirmation: two uniform points in the unit disc.
	rng := rand.New(rand.NewSource(11))
	const samples = 200000
	hits := 0
	sample := func() Vec2 {
		for {
			p := Vec2{2*rng.Float64() - 1, 2*rng.Float64() - 1}
			if p.Norm2() <= 1 {
				return p
			}
		}
	}
	for i := 0; i < samples; i++ {
		if sample().Dist(sample()) <= 1 {
			hits++
		}
	}
	emp := float64(hits) / samples
	if !almostEq(emp, want, 0.005) {
		t.Errorf("Monte Carlo overlap = %v, want %v", emp, want)
	}
}

func TestExpectedNeighborsTorus(t *testing.T) {
	got, err := ExpectedNeighborsTorus(401, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	want := 400 * math.Pi / 100
	if !almostEq(got, want, 1e-12) {
		t.Errorf("ExpectedNeighborsTorus = %v, want %v", got, want)
	}

	for _, tt := range []struct {
		n    int
		r, a float64
	}{
		{0, 1, 10}, {10, 1, 0}, {10, -1, 10}, {10, 6, 10},
	} {
		if _, err := ExpectedNeighborsTorus(tt.n, tt.r, tt.a); err == nil {
			t.Errorf("ExpectedNeighborsTorus(%d,%v,%v): want error", tt.n, tt.r, tt.a)
		}
	}
}
