package geom

import (
	"fmt"
	"math"
)

// LinkDistPDF evaluates the probability density of the distance x between
// two points placed independently and uniformly in a square of side d
// (L. E. Miller, "Distribution of Link Distances in a Wireless Network",
// J. Res. NIST 106(2), 2001 — reference [10] of the paper). With t = x/d:
//
//	0 ≤ t ≤ 1:  f(t) = 2t·(π − 4t + t²)
//	1 < t ≤ √2: f(t) = 2t·(4√(t²−1) − (t²+2−π) − 4·atan(√(t²−1)))
//
// scaled by 1/d so that the density integrates to one over [0, d√2].
func LinkDistPDF(x, d float64) float64 {
	if d <= 0 || x < 0 || x > d*math.Sqrt2 {
		return 0
	}
	t := x / d
	if t <= 1 {
		return 2 * t * (math.Pi - 4*t + t*t) / d
	}
	s := math.Sqrt(t*t - 1)
	return 2 * t * (4*s - (t*t + 2 - math.Pi) - 4*math.Atan(s)) / d
}

// LinkDistCDF evaluates Miller's cumulative distribution function for the
// link distance in a square of side d. On the main branch 0 ≤ x ≤ d,
//
//	F(x) = (x/d)² · [ π − (8/3)(x/d) + (1/2)(x/d)² ]
//
// which is the expression used by Claim 1 of the paper (it assumes r < a).
// For d < x ≤ d√2 the density's upper branch is integrated numerically so
// the CDF stays exact over the full support; F is 0 below 0 and 1 above
// d√2.
func LinkDistCDF(x, d float64) float64 {
	switch {
	case d <= 0:
		return 1 // zero-size square: the two points coincide
	case x <= 0:
		return 0
	case x >= d*math.Sqrt2:
		return 1
	}
	t := x / d
	if t <= 1 {
		return t * t * (math.Pi - 8.0/3.0*t + 0.5*t*t)
	}
	// F(1) + ∫₁ᵗ f(u) du by composite Simpson on the unit square.
	const f1 = math.Pi - 8.0/3.0 + 0.5
	return math.Min(1, f1+simpson(func(u float64) float64 { return LinkDistPDF(u, 1) }, 1, t, 64))
}

// simpson integrates f over [a, b] with n (even) panels.
func simpson(f func(float64) float64, a, b float64, n int) float64 {
	if n%2 == 1 {
		n++
	}
	h := (b - a) / float64(n)
	sum := f(a) + f(b)
	for i := 1; i < n; i++ {
		x := a + float64(i)*h
		if i%2 == 1 {
			sum += 4 * f(x)
		} else {
			sum += 2 * f(x)
		}
	}
	return sum * h / 3
}

// DiscOverlapProb returns the probability that two points placed
// independently and uniformly inside a disc of radius r are within
// distance r of each other: 1 − 3√3/(4π) ≈ 0.5865. It is used by
// diagnostics that estimate intra-cluster member–member connectivity.
func DiscOverlapProb() float64 {
	return 1 - 3*math.Sqrt(3)/(4*math.Pi)
}

// ExpectedNeighborsTorus returns the exact expected number of neighbors of
// a node among n−1 others placed uniformly on a torus of side a with
// transmission range r ≤ a/2: (n−1)·πr²/a².
func ExpectedNeighborsTorus(n int, r, a float64) (float64, error) {
	if n < 1 {
		return 0, fmt.Errorf("geom: need at least one node, got %d", n)
	}
	if a <= 0 {
		return 0, fmt.Errorf("geom: side must be positive, got %g", a)
	}
	if r < 0 {
		return 0, fmt.Errorf("geom: range must be non-negative, got %g", r)
	}
	if r > a/2 {
		// Beyond a/2 the wrapped discs overlap themselves and πr²/a²
		// over-counts; the experiments never operate there.
		return 0, fmt.Errorf("geom: torus neighbor formula requires r ≤ a/2, got r=%g a=%g", r, a)
	}
	return float64(n-1) * math.Pi * r * r / (a * a), nil
}
