package geom

import (
	"fmt"
	"math"
)

// MetricKind selects how distances are computed inside the square
// deployment region.
type MetricKind int

const (
	// MetricSquare measures plain Euclidean distance inside the square.
	// Nodes near opposite borders are far apart, so connectivity shows
	// the border effects captured by Miller's link-distance CDF
	// (Claim 1 of the paper).
	MetricSquare MetricKind = iota + 1
	// MetricTorus wraps distances around the borders, eliminating border
	// effects entirely. Link dynamics then match the unbounded-plane CV
	// model exactly; provided as an ablation of the paper's choice.
	MetricTorus
)

// String implements fmt.Stringer.
func (k MetricKind) String() string {
	switch k {
	case MetricSquare:
		return "square"
	case MetricTorus:
		return "torus"
	default:
		return fmt.Sprintf("MetricKind(%d)", int(k))
	}
}

// Metric computes distances between points in an axis-aligned square
// region [0,Side)×[0,Side). The zero value is not usable; construct with
// NewMetric.
type Metric struct {
	kind MetricKind
	side float64
}

// NewMetric returns a metric over a square of the given side length.
func NewMetric(kind MetricKind, side float64) (Metric, error) {
	if side <= 0 {
		return Metric{}, fmt.Errorf("geom: side must be positive, got %g", side)
	}
	switch kind {
	case MetricSquare, MetricTorus:
	default:
		return Metric{}, fmt.Errorf("geom: unknown metric kind %d", int(kind))
	}
	return Metric{kind: kind, side: side}, nil
}

// Kind reports the metric kind.
func (m Metric) Kind() MetricKind { return m.kind }

// Side reports the side length of the region.
func (m Metric) Side() float64 { return m.side }

// Dist2 returns the squared distance between p and q under the metric.
func (m Metric) Dist2(p, q Vec2) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	if m.kind == MetricTorus {
		dx = wrapDelta(dx, m.side)
		dy = wrapDelta(dy, m.side)
	}
	return dx*dx + dy*dy
}

// Dist returns the distance between p and q under the metric.
func (m Metric) Dist(p, q Vec2) float64 { return math.Sqrt(m.Dist2(p, q)) }

// Delta returns the displacement p − q under the metric: the plain
// coordinate difference on the square, or the minimum-image difference
// (each component mapped into [−Side/2, Side/2]) on the torus. It is the
// vector whose norm Dist reports, so callers that extrapolate relative
// motion (the event core's next-crossing prediction) stay consistent
// with the engine's distance predicate.
func (m Metric) Delta(p, q Vec2) Vec2 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	if m.kind == MetricTorus {
		dx = wrapDelta(dx, m.side)
		dy = wrapDelta(dy, m.side)
	}
	return Vec2{X: dx, Y: dy}
}

// Wrap maps a point back into [0,Side)×[0,Side) by wrapping coordinates
// around the borders, and reports whether any coordinate wrapped.
func (m Metric) Wrap(p Vec2) (Vec2, bool) {
	x, wx := wrapCoord(p.X, m.side)
	y, wy := wrapCoord(p.Y, m.side)
	return Vec2{x, y}, wx || wy
}

// Contains reports whether p lies inside [0,Side)×[0,Side).
func (m Metric) Contains(p Vec2) bool {
	return p.X >= 0 && p.X < m.side && p.Y >= 0 && p.Y < m.side
}

// wrapDelta maps a coordinate difference to the shortest wrapped
// equivalent in [-side/2, side/2].
func wrapDelta(d, side float64) float64 {
	d = math.Mod(d, side)
	switch {
	case d > side/2:
		d -= side
	case d < -side/2:
		d += side
	}
	return d
}

// wrapCoord maps x into [0, side), reporting whether wrapping occurred.
func wrapCoord(x, side float64) (float64, bool) {
	if x >= 0 && x < side {
		return x, false
	}
	x = math.Mod(x, side)
	if x < 0 {
		x += side
	}
	// math.Mod can return side itself through rounding; clamp.
	if x >= side {
		x = 0
	}
	return x, true
}
