// Package geom provides the 2-D geometric primitives used throughout the
// simulator and the analytical model: vectors, the square and torus metrics,
// and the link-distance statistics (Miller's CDF) that underpin Claim 1 of
// the paper.
package geom

import (
	"fmt"
	"math"
)

// Vec2 is a 2-D point or displacement in the plane.
type Vec2 struct {
	X, Y float64
}

// Add returns v + w.
func (v Vec2) Add(w Vec2) Vec2 { return Vec2{v.X + w.X, v.Y + w.Y} }

// Sub returns v - w.
func (v Vec2) Sub(w Vec2) Vec2 { return Vec2{v.X - w.X, v.Y - w.Y} }

// Scale returns v scaled by s.
func (v Vec2) Scale(s float64) Vec2 { return Vec2{v.X * s, v.Y * s} }

// Dot returns the dot product v·w.
func (v Vec2) Dot(w Vec2) float64 { return v.X*w.X + v.Y*w.Y }

// Norm returns the Euclidean length of v.
func (v Vec2) Norm() float64 { return math.Hypot(v.X, v.Y) }

// Norm2 returns the squared Euclidean length of v. It avoids the square
// root when only comparisons are needed.
func (v Vec2) Norm2() float64 { return v.X*v.X + v.Y*v.Y }

// Dist returns the Euclidean distance between v and w.
func (v Vec2) Dist(w Vec2) float64 { return v.Sub(w).Norm() }

// Dist2 returns the squared Euclidean distance between v and w.
func (v Vec2) Dist2(w Vec2) float64 { return v.Sub(w).Norm2() }

// Unit returns the unit vector in the direction of v. The zero vector is
// returned unchanged.
func (v Vec2) Unit() Vec2 {
	n := v.Norm()
	if n == 0 {
		return Vec2{}
	}
	return v.Scale(1 / n)
}

// Heading builds the unit vector with the given angle in radians,
// measured counter-clockwise from the positive X axis.
func Heading(theta float64) Vec2 {
	return Vec2{math.Cos(theta), math.Sin(theta)}
}

// Angle returns the angle of v in radians in (-π, π].
func (v Vec2) Angle() float64 { return math.Atan2(v.Y, v.X) }

// String implements fmt.Stringer.
func (v Vec2) String() string { return fmt.Sprintf("(%.4g, %.4g)", v.X, v.Y) }
