// Package refsim is the deliberately simple reference implementation of
// the netsim engine — the independent oracle of the differential test
// harness (internal/difftest).
//
// It shares netsim.Config, the geometry, the mobility models, the
// seed-splitting scheme and the Medium fault seam with the optimized
// engine, but none of its optimized code paths: adjacency is brute-force
// O(N²) pairwise distance comparison (no spatial grid, no CSR layout, no
// counting sorts), link events come from a naive membership scan over
// every candidate pair (no merge walk over shared buffers), and the
// message queue is a plain head-popped slice allocated afresh as it grows
// (no ring drain, no buffer reuse). Every tick allocates freely.
//
// The two engines must agree bit-for-bit: same positions, same neighbor
// lists, same link events in the same order, same delivery sequence (and
// therefore the same counter-based fault draws), same tallies. Any
// divergence is a bug in one of them — almost always in the optimized
// data structures this package deliberately avoids. Keep this code
// obviously correct and resist optimizing it; its only job is to be easy
// to trust.
package refsim

import (
	"fmt"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/mobility"
	"repro/internal/netsim"
	"repro/internal/simrand"
)

// Sim is the reference simulation engine. Construct with New, register
// protocols, then Start and Step (or Run) — the same lifecycle as
// netsim.Sim. Sim is not safe for concurrent use.
type Sim struct {
	cfg    netsim.Config
	metric geom.Metric
	model  mobility.Model
	rngMob *rand.Rand
	medium netsim.Medium
	stop   func() bool

	pop *mobility.Population

	adj  [][]netsim.NodeID // current topology, row i sorted ascending
	prev [][]netsim.NodeID // previous tick's topology

	protocols []netsim.Protocol
	started   bool

	now     float64
	tick    int64
	tallies netsim.Tallies

	queue     []netsim.Message
	events    []netsim.LinkEvent
	delivered int64
	dropped   int64
	attempts  int64

	// pending holds delayed point deliveries in one flat, append-only
	// slice in insertion order — no due-tick buckets, no ring, no buffer
	// reuse. Releases scan the whole slice; overflow evictions scan it
	// again for the receiver's oldest live entry. Deliberately naive.
	pending []refPending
}

// refPending is one delayed point delivery awaiting its due tick.
type refPending struct {
	due  int64
	msg  netsim.Message
	rcv  netsim.NodeID
	dead bool // evicted by the drop-oldest overflow policy
}

var _ netsim.Env = (*Sim)(nil)

// New builds a reference simulator for the given scenario. The defaulting
// rules, validation, stream derivations and initial topology computation
// mirror netsim.New exactly, so both engines observe identical random
// draws from the same seed.
func New(cfg netsim.Config) (*Sim, error) {
	// Same defaults netsim applies: square metric, static mobility.
	if cfg.Metric == 0 {
		cfg.Metric = geom.MetricSquare
	}
	if cfg.Model == nil {
		cfg.Model = mobility.Static{}
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	metric, err := geom.NewMetric(cfg.Metric, cfg.Side)
	if err != nil {
		return nil, fmt.Errorf("refsim: %w", err)
	}
	src := simrand.New(cfg.Seed)
	pop, err := cfg.Model.Init(cfg.N, metric, src.Split("placement").Rand())
	if err != nil {
		return nil, fmt.Errorf("refsim: init mobility: %w", err)
	}
	s := &Sim{
		cfg:    cfg,
		metric: metric,
		model:  cfg.Model,
		rngMob: src.Split("mobility").Rand(),
		medium: cfg.Medium,
		stop:   cfg.Stop,
		pop:    pop,
		prev:   make([][]netsim.NodeID, cfg.N),
	}
	if s.medium != nil {
		s.medium.Reset(cfg.N, src.Split("faults"))
		s.medium.Advance(0)
	}
	s.adj = s.computeAdjacency()
	return s, nil
}

// Register adds protocols in processing order. It must be called before
// Start.
func (s *Sim) Register(ps ...netsim.Protocol) error {
	if s.started {
		return fmt.Errorf("refsim: Register after Start")
	}
	s.protocols = append(s.protocols, ps...)
	return nil
}

// Start invokes every protocol's Start hook and delivers the messages
// they emit. It is idempotent; Step calls it implicitly if needed.
func (s *Sim) Start() error {
	if s.started {
		return nil
	}
	s.started = true
	for _, p := range s.protocols {
		if err := p.Start(s); err != nil {
			return fmt.Errorf("refsim: start %s: %w", p.Name(), err)
		}
	}
	return s.drainQueue()
}

// Step advances the simulation by one tick, in the same phase order as
// netsim.Sim.Step: stop check, mobility, fault advancement, topology
// recomputation, link-event diffing, protocol event hooks, queue drain,
// per-tick protocol work, final drain.
func (s *Sim) Step() error {
	if s.stop != nil && s.stop() {
		return netsim.ErrStopped
	}
	if !s.started {
		if err := s.Start(); err != nil {
			return err
		}
	}
	s.tick++
	s.now = float64(s.tick) * s.cfg.Dt

	s.model.Step(s.pop, s.metric, s.cfg.Dt, s.rngMob)
	if s.medium != nil {
		s.medium.Advance(s.tick)
	}

	s.prev = s.adj
	s.adj = s.computeAdjacency()
	s.events = s.diffEvents()

	for _, ev := range s.events {
		if ev.Border {
			if ev.Up {
				s.tallies.BorderGen++
			} else {
				s.tallies.BorderBrk++
			}
		} else {
			if ev.Up {
				s.tallies.LinkGen++
			} else {
				s.tallies.LinkBrk++
			}
		}
		for _, p := range s.protocols {
			p.OnLinkEvent(ev)
		}
	}
	s.releasePending()
	if err := s.drainQueue(); err != nil {
		return err
	}
	for _, p := range s.protocols {
		p.OnTick(s.now)
	}
	return s.drainQueue()
}

// Run advances the simulation by the given duration (rounded down to
// whole ticks).
func (s *Sim) Run(duration float64) error {
	steps := int(duration / s.cfg.Dt)
	for i := 0; i < steps; i++ {
		if err := s.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Now implements netsim.Env.
func (s *Sim) Now() float64 { return s.now }

// NumNodes implements netsim.Env.
func (s *Sim) NumNodes() int { return s.cfg.N }

// Config returns the scenario the simulator was built with.
func (s *Sim) Config() netsim.Config { return s.cfg }

// Neighbors implements netsim.Env.
func (s *Sim) Neighbors(id netsim.NodeID) []netsim.NodeID { return s.adj[id] }

// Degree implements netsim.Env.
func (s *Sim) Degree(id netsim.NodeID) int { return len(s.adj[id]) }

// IsNeighbor implements netsim.Env with a plain linear scan.
func (s *Sim) IsNeighbor(a, b netsim.NodeID) bool {
	for _, nb := range s.adj[a] {
		if nb == b {
			return true
		}
	}
	return false
}

// Position returns the current position of a node.
func (s *Sim) Position(id netsim.NodeID) geom.Vec2 { return s.pop.Pos[id] }

// Tallies returns a snapshot of all counters.
func (s *Sim) Tallies() netsim.Tallies { return s.tallies }

// Delivered returns the total number of successful point deliveries so
// far.
func (s *Sim) Delivered() int64 { return s.delivered }

// Dropped returns the total number of point deliveries the fault medium
// lost.
func (s *Sim) Dropped() int64 { return s.dropped }

// MeanDegree returns the current average node degree.
func (s *Sim) MeanDegree() float64 {
	edges := 0
	for _, row := range s.adj {
		edges += len(row)
	}
	return float64(edges) / float64(s.cfg.N)
}

// Events returns the link events detected by the last Step. The slice is
// owned by the engine and valid until the next Step.
func (s *Sim) Events() []netsim.LinkEvent { return s.events }

// Broadcast implements netsim.Env with the same acceptance rules as the
// optimized engine: out-of-range senders and unknown kinds count as
// Invalid, broadcasts from crashed nodes are Suppressed, everything else
// is tallied and queued.
func (s *Sim) Broadcast(msg netsim.Message) {
	if msg.From < 0 || int(msg.From) >= s.cfg.N {
		s.tallies.Invalid++
		return
	}
	if !netsim.KindValid(msg.Kind) {
		s.tallies.Invalid++
		return
	}
	if s.medium != nil && !s.medium.Alive(msg.From) {
		s.tallies.Suppressed++
		return
	}
	s.tallies.Record(msg.Kind, msg.Bits, msg.Border)
	s.queue = append(s.queue, msg)
}

// drainQueue delivers queued broadcasts in FIFO order until quiescence,
// popping the head of a plain slice. The delivery sequence (message
// order × ascending neighbor order) and the run-global attempt counter
// handed to Medium.Deliver match the optimized engine exactly, so both
// engines consume identical counter-based fault draws. The same
// message-storm guard applies.
func (s *Sim) drainQueue() error {
	maxRounds := 200*s.cfg.N + 10_000
	processed := 0
	for len(s.queue) > 0 {
		msg := s.queue[0]
		s.queue = s.queue[1:]
		processed++
		for _, nb := range s.adj[msg.From] {
			if s.medium == nil {
				s.deliver(nb, msg)
				continue
			}
			s.attempts++
			fate := s.medium.Deliver(s.attempts, msg.From, nb)
			if fate.Drop {
				s.dropped++
				s.tallies.Dropped++
				continue
			}
			s.deliverOrPark(nb, msg, fate.Delay)
			if fate.Dup {
				s.tallies.Duplicated++
				s.deliverOrPark(nb, msg, fate.DupDelay)
			}
		}
		if processed > maxRounds {
			s.queue = nil
			return fmt.Errorf("refsim: message storm: > %d broadcasts in one tick", maxRounds)
		}
	}
	s.queue = nil
	return nil
}

// deliver fires one point delivery into the protocol stack.
func (s *Sim) deliver(rcv netsim.NodeID, msg netsim.Message) {
	s.delivered++
	s.tallies.Delivered++
	for _, p := range s.protocols {
		p.OnMessage(rcv, msg)
	}
}

// deliverOrPark applies a non-drop fate under the same rules as the
// optimized engine: zero delay delivers now, a positive delay (clamped
// to MaxDelayTicks) parks the delivery. When the receiver already holds
// PendingLimit live entries, its oldest (smallest due tick, earliest
// insertion on ties) is tombstoned and counted in Tallies.Overflow —
// found here by a full scan rather than a bucket walk.
func (s *Sim) deliverOrPark(rcv netsim.NodeID, msg netsim.Message, delay int32) {
	if delay <= 0 {
		s.deliver(rcv, msg)
		return
	}
	d := int64(delay)
	if d > netsim.MaxDelayTicks {
		d = netsim.MaxDelayTicks
	}
	limit := s.cfg.PendingLimit
	if limit == 0 {
		limit = netsim.DefaultPendingLimit
	}
	live, oldest := 0, -1
	for i := range s.pending {
		if s.pending[i].dead || s.pending[i].rcv != rcv {
			continue
		}
		live++
		if oldest == -1 || s.pending[i].due < s.pending[oldest].due {
			oldest = i
		}
	}
	if live >= limit {
		s.pending[oldest].dead = true
		s.tallies.Overflow++
	}
	s.pending = append(s.pending, refPending{due: s.tick + d, msg: msg, rcv: rcv})
}

// releasePending delivers every parked message due this tick, in
// insertion order, and compacts the slice. Receivers whose radio died in
// flight lose the frame (counted Dropped); adjacency is deliberately not
// re-checked — both mirror the optimized engine's semantics. Handlers
// only queue broadcasts (parking happens in drainQueue), so the slice is
// not mutated while it is walked.
func (s *Sim) releasePending() {
	if s.medium == nil || len(s.pending) == 0 {
		return
	}
	var rest []refPending
	for _, p := range s.pending {
		if p.dead {
			continue
		}
		if p.due != s.tick {
			rest = append(rest, p)
			continue
		}
		if !s.medium.Alive(p.rcv) {
			s.dropped++
			s.tallies.Dropped++
			continue
		}
		s.deliver(p.rcv, p.msg)
	}
	s.pending = rest
}

// computeAdjacency rebuilds the topology by brute force: every unordered
// pair is tested against the transmission range directly, with the same
// squared-distance comparison (and the same crashed-node filtering) the
// optimized engine applies. Rows come out sorted ascending because j
// only ever grows.
func (s *Sim) computeAdjacency() [][]netsim.NodeID {
	n := s.cfg.N
	adj := make([][]netsim.NodeID, n)
	r2 := s.cfg.Range * s.cfg.Range
	for i := 0; i < n; i++ {
		if s.medium != nil && !s.medium.Alive(netsim.NodeID(i)) {
			continue
		}
		for j := i + 1; j < n; j++ {
			if s.medium != nil && (!s.medium.Alive(netsim.NodeID(j)) ||
				s.medium.Cut(netsim.NodeID(i), netsim.NodeID(j))) {
				continue
			}
			if s.metric.Dist2(s.pop.Pos[i], s.pop.Pos[j]) <= r2 {
				adj[i] = append(adj[i], netsim.NodeID(j))
				adj[j] = append(adj[j], netsim.NodeID(i))
			}
		}
	}
	return adj
}

// diffEvents reports every topology change between the previous and the
// current tick by naive membership testing: for each node i, every
// candidate partner j > i is looked up in both the old and the new
// neighbor sets. Events therefore come out grouped by i and ascending in
// j — the same deterministic order the optimized merge walk produces.
func (s *Sim) diffEvents() []netsim.LinkEvent {
	var events []netsim.LinkEvent
	n := s.cfg.N
	for i := 0; i < n; i++ {
		inOld := make(map[netsim.NodeID]bool, len(s.prev[i]))
		for _, j := range s.prev[i] {
			inOld[j] = true
		}
		inNew := make(map[netsim.NodeID]bool, len(s.adj[i]))
		for _, j := range s.adj[i] {
			inNew[j] = true
		}
		for j := netsim.NodeID(i) + 1; int(j) < n; j++ {
			was, is := inOld[j], inNew[j]
			if was == is {
				continue
			}
			events = append(events, netsim.LinkEvent{
				A:      netsim.NodeID(i),
				B:      j,
				Up:     is,
				Border: s.pop.Wrapped[i] || s.pop.Wrapped[j],
				Time:   s.now,
			})
		}
	}
	return events
}
