package refsim

import (
	"errors"
	"testing"

	"repro/internal/cluster"
	"repro/internal/faults"
	"repro/internal/geom"
	"repro/internal/mobility"
	"repro/internal/netsim"
)

// TestAdjacencyMatchesMetric checks the one property the reference
// engine is trusted for: node j is a neighbor of node i exactly when
// their metric distance is within range, rows are sorted ascending and
// the relation is symmetric.
func TestAdjacencyMatchesMetric(t *testing.T) {
	for _, kind := range []geom.MetricKind{geom.MetricSquare, geom.MetricTorus} {
		cfg := netsim.Config{
			N: 60, Side: 8, Range: 1.7, Dt: 0.1, Seed: 11,
			Metric: kind,
			Model:  mobility.BCV{Speed: 0.2},
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		metric, err := geom.NewMetric(kind, cfg.Side)
		if err != nil {
			t.Fatal(err)
		}
		for step := 0; step < 25; step++ {
			for i := 0; i < cfg.N; i++ {
				row := s.Neighbors(netsim.NodeID(i))
				for k := 1; k < len(row); k++ {
					if row[k-1] >= row[k] {
						t.Fatalf("%v step %d: row %d not strictly ascending: %v", kind, step, i, row)
					}
				}
				for j := 0; j < cfg.N; j++ {
					if i == j {
						continue
					}
					within := metric.Dist2(s.Position(netsim.NodeID(i)), s.Position(netsim.NodeID(j))) <= cfg.Range*cfg.Range
					if got := s.IsNeighbor(netsim.NodeID(i), netsim.NodeID(j)); got != within {
						t.Fatalf("%v step %d: adjacency(%d,%d)=%v, metric says %v", kind, step, i, j, got, within)
					}
					if s.IsNeighbor(netsim.NodeID(i), netsim.NodeID(j)) != s.IsNeighbor(netsim.NodeID(j), netsim.NodeID(i)) {
						t.Fatalf("%v step %d: adjacency not symmetric at (%d,%d)", kind, step, i, j)
					}
				}
			}
			if err := s.Step(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestLIDRerunSatisfiesInvariants re-runs the Lowest-ID formation from
// scratch against the reference topology every tick — the brute-force
// clustering oracle — and requires P1/P2 to hold by construction.
func TestLIDRerunSatisfiesInvariants(t *testing.T) {
	s, err := New(netsim.Config{
		N: 50, Side: 8, Range: 1.6, Dt: 0.1, Seed: 3,
		Model: mobility.EpochRWP{Speed: 0.3, Epoch: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 30; step++ {
		a, err := cluster.Form(s, cluster.LID{})
		if err != nil {
			t.Fatalf("step %d: formation: %v", step, err)
		}
		if err := a.Check(s); err != nil {
			t.Fatalf("step %d: fresh LID formation violates invariants: %v", step, err)
		}
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestBroadcastAcceptanceRules pins the Invalid/Suppressed accounting:
// bad senders and unknown kinds are Invalid, broadcasts from crashed
// nodes are Suppressed, and neither reaches the queue.
func TestBroadcastAcceptanceRules(t *testing.T) {
	inj, err := faults.New(faults.Config{Churn: faults.Churn{MeanUpTicks: 1, MeanDownTicks: 1e9}})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(netsim.Config{N: 4, Side: 5, Range: 3, Dt: 1, Seed: 1, Medium: inj})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	s.Broadcast(netsim.Message{Kind: netsim.MsgHello, From: -1})
	s.Broadcast(netsim.Message{Kind: netsim.MsgKind(99), From: 0})
	w := s.Tallies()
	if w.Invalid != 2 {
		t.Fatalf("Invalid = %v, want 2", w.Invalid)
	}
	// Advance until churn crashes some node, then broadcast from it.
	for step := 0; step < 50; step++ {
		if err := s.Step(); err != nil {
			t.Fatal(err)
		}
		crashed := netsim.NodeID(-1)
		for i := 0; i < s.NumNodes(); i++ {
			if !inj.Alive(netsim.NodeID(i)) {
				crashed = netsim.NodeID(i)
				break
			}
		}
		if crashed >= 0 {
			before := s.Tallies().Suppressed
			s.Broadcast(netsim.Message{Kind: netsim.MsgHello, From: crashed, Bits: 8})
			if got := s.Tallies().Suppressed; got != before+1 {
				t.Fatalf("Suppressed = %v, want %v", got, before+1)
			}
			return
		}
	}
	t.Fatal("churn never crashed a node within 50 ticks")
}

// TestStopCheck verifies the cooperative cancellation seam mirrors the
// optimized engine: Step fails with netsim.ErrStopped before any state
// advances.
func TestStopCheck(t *testing.T) {
	stopped := false
	s, err := New(netsim.Config{
		N: 5, Side: 5, Range: 2, Dt: 1, Seed: 1,
		Stop: func() bool { return stopped },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Step(); err != nil {
		t.Fatal(err)
	}
	before := s.Now()
	stopped = true
	if err := s.Step(); !errors.Is(err, netsim.ErrStopped) {
		t.Fatalf("Step under cancellation = %v, want ErrStopped", err)
	}
	if s.Now() != before {
		t.Fatal("cancelled Step advanced simulation time")
	}
}
