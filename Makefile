# Development targets for the MANET overhead reproduction.

.PHONY: build test vet race bench

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...

race:
	go test -race ./...

# bench runs every benchmark once (the reproduction scoreboard) and then
# regenerates the machine-readable performance artifact BENCH_1.json:
# Figure 1–3 wall-clock serial vs parallel, mean-rel-gap, and the
# steady-state tick-loop throughput vs the growth seed.
bench:
	go test -run '^$$' -bench=. -benchtime=1x .
	go run ./cmd/bench -out BENCH_1.json
