# Development targets for the MANET overhead reproduction.

.PHONY: build test vet race check bench

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...

race:
	go test -race ./...

# check is the pre-merge gate: static analysis, the full test suite
# under the race detector, and a short fuzz smoke over the checkpoint
# journal decoder (the code path between a crash-damaged file and a
# resumed experiment).
check:
	go vet ./... && go test -race ./...
	go test -run '^$$' -fuzz FuzzJournalDecode -fuzztime 5s ./internal/checkpoint

# bench runs every benchmark once (the reproduction scoreboard) and then
# regenerates the machine-readable performance artifact BENCH_2.json:
# Figure 1–3 wall-clock serial vs parallel, mean-rel-gap, and the
# steady-state tick-loop throughput vs the growth seed — on the ideal
# medium and with the fault injector enabled. BENCH_1.json is the
# preserved artifact of the previous revision.
bench:
	go test -run '^$$' -bench=. -benchtime=1x .
	go run ./cmd/bench -out BENCH_2.json
