# Development targets for the MANET overhead reproduction.

.PHONY: build test vet race check check-full chaos difftest difftest-event bench bench-smoke serve-smoke crash-harness worker-chaos storage-chaos

build:
	go build ./...

test:
	go test ./...

vet:
	go vet ./...

race:
	go test -race ./...

# check is the pre-merge gate: static analysis, the test suite in short
# mode under the race detector (this includes the 24-scenario three-way
# differential lockstep matrix and the metamorphic/conformance gates of
# internal/difftest), and short fuzz smokes over the checkpoint journal
# decoder, the netsim config validator, the pending-delivery queue, the
# faults config validator, the daemon's HTTP job-spec decoder, the
# distributed-sweep wire protocol (lease grants plus the coordinator's
# claim/heartbeat/result/done decoders), the event core's priority
# queue (model-checked against a sorted-slice specification), and the
# storage fault-plan decoder.
check:
	go vet ./... && go test -race -short -count=1 ./...
	go test -run '^$$' -fuzz FuzzJournalDecode -fuzztime 5s ./internal/checkpoint
	go test -run '^$$' -fuzz FuzzFaultPlanDecode -fuzztime 5s ./internal/vfs
	go test -run '^$$' -fuzz FuzzConfigValidate -fuzztime 5s ./internal/netsim
	go test -run '^$$' -fuzz FuzzPendingQueue -fuzztime 5s ./internal/netsim
	go test -run '^$$' -fuzz FuzzConfigValidate -fuzztime 5s ./internal/faults
	go test -run '^$$' -fuzz FuzzJobSpecDecode -fuzztime 5s ./internal/service
	go test -run '^$$' -fuzz FuzzLeaseDecode -fuzztime 5s ./internal/service
	go test -run '^$$' -fuzz FuzzWireDecode -fuzztime 5s ./internal/service
	go test -run '^$$' -fuzz FuzzEventQueue -fuzztime 5s ./internal/eventsim

# check-full is the CI deep gate: the whole suite — 48 lockstep
# scenarios, full-length statistical conformance — with caching off.
check-full:
	go vet ./... && go test -race -count=1 ./...

# chaos is the convergence-SLO soak: the randomized pathology matrix
# (loss + delay/jitter + duplication + moving partitions) under the race
# detector, demanding that every partition heal reaches cluster and
# route convergence before the next onset. Short mode keeps it a quick
# focused gate; check-full runs the full matrix as part of the suite.
chaos:
	go test -race -short -count=1 -run TestChaosConvergence -v ./internal/experiments

# difftest runs only the correctness harness (differential oracle,
# metamorphic invariances, statistical conformance) at full size.
difftest:
	go test -count=1 -v ./internal/difftest/ ./internal/refsim/

# difftest-event focuses on the event-driven core: the full 48-scenario
# three-way lockstep matrix (reference oracle vs tick engine vs event
# core, with fast-path coverage assertions), the static-scenario
# schedule pins, and the eventsim package's own lockstep, determinism,
# metamorphic and no-late-event gates.
difftest-event:
	go test -count=1 -v -run 'TestLockstepMatrix|TestStaticExtras' ./internal/difftest/
	go test -count=1 -v ./internal/eventsim/ ./internal/mobility/

# bench runs every benchmark once (the reproduction scoreboard) and then
# regenerates the machine-readable performance artifact BENCH_7.json:
# Figure 1–3 wall-clock per worker count, the steady-state tick-loop
# throughput vs the growth seed — on the ideal medium, with loss+churn
# faults, and with the full delivery pipeline — the node-count scaling
# sweep (1k/10k/100k at constant density) against the BENCH_3
# full-rescan extrapolation, the tick-vs-event core comparison rows
# (bit-identity asserted before timing), and the storage-seam row (raw
# *os.File vs the internal/vfs passthrough on the journal append+fsync
# path; any allocation delta aborts the bench). BENCH_1–6.json are the
# preserved artifacts of previous revisions.
bench:
	go test -run '^$$' -bench=. -benchtime=1x .
	go run ./cmd/bench -out BENCH_7.json

# bench-smoke is the CI-sized benchmark gate: the N=1k step loop with
# tile-parallel topology maintenance enabled, under the race detector,
# writing its artifact to a scratch path. -core event routes the figure
# drivers through the event engine selector, and the step-only artifact
# always carries the tick-vs-event comparison rows (each bit-checked
# before timing). It is a correctness smoke, not a timing source.
bench-smoke:
	go run -race ./cmd/bench -step-only -step-ticks 120 -n 1000 -tiles 4 -core event -out /tmp/bench-smoke.json

# serve-smoke is the daemon's end-to-end gate, race-enabled: build the
# real manetsimd binary, start it, verify liveness, submit a job,
# provoke one 429 shed under admission control, then SIGTERM it and
# require a graceful drain with exit code 0 and the standardized drain
# message.
serve-smoke:
	go test -race -tags servesmoke -run TestServeSmoke -count=1 -v ./cmd/manetsimd

# crash-harness is the crash-safety acceptance check: a real daemon
# process is SIGKILLed mid-sweep, then a restart over the same state
# directory must resume the job and produce an artifact byte-identical
# to an uninterrupted run, for sweep worker counts 1 and 2.
crash-harness:
	go test -race -tags crashharness -run TestCrashKillRecovery -count=1 -v ./internal/service

# worker-chaos is the distributed-sweep acceptance check: a real
# coordinator process and four real worker processes run a scripted
# kill/hang/partition schedule — one worker SIGKILLed provably
# mid-point, one SIGSTOPped (partition) and later resumed to stream a
# stale duplicate, one hung inside a point with live heartbeats, plus
# two coordinator SIGKILL+restarts over the same state directory. The
# merged artifact must be byte-identical to an uninterrupted
# single-process run; any diff fails the gate.
worker-chaos:
	go test -race -tags workerchaos -run TestWorkerChaos -count=1 -v ./internal/service

# storage-chaos is the storage-fault acceptance check: the daemon runs
# over a deterministic fault-injecting filesystem under scripted and
# randomized schedules of ENOSPC, I/O errors, short writes, fsync
# failures and crash-point truncations. Every schedule must end either
# in a loud failure with all previously acknowledged records intact, or
# in a restart over the repaired filesystem whose artifact is
# byte-identical to an uninterrupted run.
storage-chaos:
	go test -race -tags storagechaos -run TestStorageChaos -count=1 -v ./internal/service
