package repro

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"slices"
	"strconv"
	"strings"
	"testing"
)

// goldenSchemas pins the header row — and with it the column count and
// order — of every published CSV under results/. Downstream notebooks
// and the paper's figure scripts address columns by these names, so a
// renamed or reordered column is a breaking change that must show up in
// review as an explicit golden update, not slip through as a "refactor".
var goldenSchemas = map[string][]string{
	"fig1.csv": {"r/a", "f_hello analysis", "f_hello simulation",
		"f_cluster analysis", "f_cluster simulation", "f_route analysis", "f_route simulation"},
	"fig2.csv": {"v/a", "f_hello analysis", "f_hello simulation",
		"f_cluster analysis", "f_cluster simulation", "f_route analysis", "f_route simulation"},
	"fig3.csv": {"density (nodes per unit area)", "f_hello analysis", "f_hello simulation",
		"f_cluster analysis", "f_cluster simulation", "f_route analysis", "f_route simulation"},
	"fig4a.csv": {"d+1", "(1-P)^(d+1) at fixed point"},
	"fig4b.csv": {"d+1", "P from Eqn (16)", "P = 1/sqrt(d+1) (Eqn 17)"},
	"fig5a.csv": {"network size N", "analysis (N·P from Eqn 16)", "simulation (LID formation)"},
	"fig5b.csv": {"r/a", "analysis (N·P from Eqn 16)", "simulation (LID formation)"},
	"ablation_border.csv": {"r/a", "analysis λ (Claim 2)",
		"simulation, border excluded", "simulation, border included"},
	"ablation_torus.csv": {"r/a", "analysis d, square (Miller)", "simulation d, square",
		"analysis d, torus (πρr²)", "simulation d, torus"},
	"degradation.csv": {"loss rate p", "f_cluster analysis", "f_cluster simulation",
		"f_route simulation", "drop rate", "repair mean (ticks)", "repair max (ticks)",
		"violated node fraction"},
	"head_ratio_timeline.csv": {"time / E[link lifetime]", "P(t) simulation",
		"formation P (Eqn 16)", "equilibrium P (measured)"},
	"recovery.csv": {"partition duration (ticks)", "heals", "unconverged heals",
		"cluster converge mean (ticks)", "cluster converge max (ticks)",
		"route converge mean (ticks)", "route converge max (ticks)",
		"drop rate", "dup rate"},
}

// TestResultsSchemas checks every results/*.csv against its golden
// header and requires every data row to be rectangular and numeric —
// the minimal promise a plotting script relies on.
func TestResultsSchemas(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("results", "*.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no CSVs under results/ — wrong working directory?")
	}

	seen := map[string]bool{}
	for _, path := range files {
		name := filepath.Base(path)
		seen[name] = true
		t.Run(name, func(t *testing.T) {
			want, ok := goldenSchemas[name]
			if !ok {
				t.Fatalf("results/%s has no golden schema — add it to goldenSchemas", name)
			}
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			rows, err := csv.NewReader(f).ReadAll()
			if err != nil {
				t.Fatalf("not parseable CSV: %v", err)
			}
			if len(rows) < 2 {
				t.Fatalf("only %d rows — a published figure needs a header and data", len(rows))
			}
			if !slices.Equal(rows[0], want) {
				t.Errorf("header changed:\n got %q\nwant %q", rows[0], want)
			}
			for i, row := range rows[1:] {
				if len(row) != len(want) {
					t.Fatalf("data row %d has %d columns, header has %d", i+1, len(row), len(want))
				}
				for j, cell := range row {
					if _, err := strconv.ParseFloat(strings.TrimSpace(cell), 64); err != nil {
						t.Fatalf("row %d column %q is not numeric: %q", i+1, want[j], cell)
					}
				}
			}
		})
	}
	for name := range goldenSchemas {
		if !seen[name] {
			t.Errorf("golden schema for %s has no file under results/ — regenerate or drop the golden", name)
		}
	}
}
