// Package repro is a reproduction of "Analysis of Clustering and Routing
// Overhead for Clustered Mobile Ad Hoc Networks" (Xue, Er, Seah — ICDCS
// 2006): an analytical lower-bound model of the HELLO, CLUSTER and ROUTE
// control overheads of one-hop clustered MANETs, together with the full
// simulation substrate needed to validate it.
//
// The library lives under internal/:
//
//   - internal/core — the paper's contribution: Claims 1-2 and Eqns
//     (1)–(18), the LID cluster-head ratio, and the §6 Θ-notation orders.
//   - internal/netsim, internal/mobility, internal/geom, internal/space —
//     a deterministic discrete-time MANET simulator.
//   - internal/cluster — LID/HCC/DMAC clustering with reactive
//     maintenance of the P1/P2 invariants.
//   - internal/routing — HELLO discovery, hybrid intra/inter-cluster
//     routing, and flat DSDV/AODV baselines.
//   - internal/experiments — drivers that regenerate every figure and
//     table of the paper (see bench_test.go and cmd/figures).
//
// See README.md for a tour, DESIGN.md for the system inventory and
// equation reconstruction, and EXPERIMENTS.md for paper-vs-measured
// results.
package repro
