// Vehicular: budget the control-plane bandwidth of a high-mobility
// clustered network. The example sweeps vehicle speed, shows how each
// message class scales (HELLO and ROUTE grow linearly with speed — the
// paper's Θ(v) result), and then inverts the model: given a control
// bandwidth budget per vehicle, it finds the largest transmission range
// the budget sustains at highway speed.
//
//	go run ./examples/vehicular
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/metrics"
)

func main() {
	log.SetFlags(0)

	// 200 vehicles on a 2km × 2km grid section (units: meters, seconds).
	const n = 200
	const side = 2000.0
	const density = n / (side * side)
	const radioRange = 250.0

	fmt.Println("speed sweep at r = 250 m (analysis + one simulated point)")
	header := []string{"speed m/s", "f_hello", "f_cluster", "f_route", "total bit/s/vehicle"}
	var rows [][]string
	for _, v := range []float64{5, 10, 20, 30, 40} {
		net := core.Network{N: n, R: radioRange, V: v, Density: density}
		if err := net.Validate(); err != nil {
			log.Fatal(err)
		}
		p, err := net.LIDHeadRatioExact()
		if err != nil {
			log.Fatal(err)
		}
		rates, err := net.ControlRates(p)
		if err != nil {
			log.Fatal(err)
		}
		ovh, err := net.ControlOverheads(p, core.DefaultMessageSizes)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.0f", v),
			fmt.Sprintf("%.3f", rates.Hello),
			fmt.Sprintf("%.3f", rates.Cluster),
			fmt.Sprintf("%.3f", rates.Route),
			fmt.Sprintf("%.0f", ovh.Total()),
		})
	}
	fmt.Print(metrics.RenderTable(header, rows))

	// Cross-check one point by simulation.
	net := core.Network{N: n, R: radioRange, V: 20, Density: density}
	opts := experiments.DefaultOptions()
	opts.TargetEvents = 10_000
	m, err := experiments.MeasureRates(net, opts)
	if err != nil {
		log.Fatal(err)
	}
	rates, err := net.ControlRates(m.HeadRatio)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nsimulated at 20 m/s: f_hello %.3f (ana %.3f), f_cluster %.3f (ana %.3f), f_route %.3f (ana %.3f)\n",
		m.FHello, rates.Hello, m.FCluster, rates.Cluster, m.FRoute, rates.Route)

	// Invert the model: biggest range within a control budget at 30 m/s.
	const budgetBits = 250.0 // control bits per vehicle per second
	fmt.Printf("\nlargest radio range within %.0f bit/s control budget at 30 m/s: ", budgetBits)
	r, err := maxRangeWithinBudget(n, density, 30, budgetBits)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%.0f m\n", r)
	fmt.Println("(HELLO and ROUTE overheads grow Θ(r), so the budget caps the range.)")
}

// maxRangeWithinBudget bisects the transmission range whose total
// analytical control overhead meets the per-vehicle budget.
func maxRangeWithinBudget(n int, density, v, budget float64) (float64, error) {
	lo, hi := 10.0, 1900.0
	for i := 0; i < 60; i++ {
		mid := (lo + hi) / 2
		net := core.Network{N: n, R: mid, V: v, Density: density}
		p, err := net.LIDHeadRatioExact()
		if err != nil {
			return 0, err
		}
		ovh, err := net.ControlOverheads(p, core.DefaultMessageSizes)
		if err != nil {
			return 0, err
		}
		if ovh.Total() > budget {
			hi = mid
		} else {
			lo = mid
		}
	}
	return lo, nil
}
