// Sensorfield: dimension the clustering layer of a dense, quasi-static
// sensor deployment. Given a field size and a candidate radio range, the
// example sweeps deployment density, predicts the cluster structure with
// the paper's LID analysis, validates it against simulated formations,
// and reports the steady-state control overhead budget for the residual
// drift mobility of the field.
//
//	go run ./examples/sensorfield
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/netsim"
)

const (
	fieldSide = 20.0  // field is 20×20 length units
	radio     = 2.0   // radio range of one sensor
	drift     = 0.002 // residual mobility (wind/water drift), units/s
	placings  = 8     // placements averaged per density
)

func main() {
	log.SetFlags(0)
	fmt.Printf("sensor field %gx%g, radio range %g, drift %g\n\n", fieldSide, fieldSide, radio, drift)

	header := []string{"density", "nodes", "clusters (analysis)", "clusters (simulated)", "cluster size", "ctrl overhead bit/node/s"}
	var rows [][]string
	for _, density := range []float64{0.25, 0.5, 1.0, 2.0, 4.0} {
		n := int(density * fieldSide * fieldSide)
		net := core.Network{N: n, R: radio, V: drift, Density: density}
		if err := net.Validate(); err != nil {
			log.Fatal(err)
		}
		p, err := net.LIDHeadRatioExact()
		if err != nil {
			log.Fatal(err)
		}
		analysisClusters := float64(n) * p

		// Validate the cluster structure on simulated placements.
		simClusters, err := simulatedClusters(n, placings)
		if err != nil {
			log.Fatal(err)
		}

		// The overhead budget uses the analysis directly: a static-ish
		// field still pays for drift-induced link churn.
		ovh, err := net.ControlOverheads(p, core.DefaultMessageSizes)
		if err != nil {
			log.Fatal(err)
		}
		m, err := core.ExpectedClusterSize(p)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%.2f", density),
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.1f", analysisClusters),
			fmt.Sprintf("%.1f", simClusters),
			fmt.Sprintf("%.1f", m),
			fmt.Sprintf("%.2f", ovh.Total()),
		})
	}
	fmt.Print(metrics.RenderTable(header, rows))
	fmt.Println("\nReading: denser fields form proportionally fewer, larger clusters")
	fmt.Println("(P ≈ 1/√(d+1)); control overhead stays modest because drift is slow,")
	fmt.Println("and ROUTE traffic dominates the budget as clusters grow. At high")
	fmt.Println("density the Eqn (16) analysis over-predicts the cluster count — the")
	fmt.Println("independence approximation ignores that heads must be pairwise out of")
	fmt.Println("range (see EXPERIMENTS.md); the simulated column is the ground truth.")
}

// simulatedClusters forms LID clusters over independent placements and
// returns the average head count.
func simulatedClusters(n, repeats int) (float64, error) {
	total := 0.0
	for rep := 0; rep < repeats; rep++ {
		sim, err := netsim.New(netsim.Config{
			N: n, Side: fieldSide, Range: radio, Dt: 1,
			Seed: 1000 + uint64(rep)*31,
		})
		if err != nil {
			return 0, err
		}
		a, err := cluster.Form(sim, cluster.LID{})
		if err != nil {
			return 0, err
		}
		total += float64(a.NumHeads())
	}
	return total / float64(repeats), nil
}
