// Dhopclustering: choose a hop bound for multi-hop clustering. One-hop
// clusters (the paper's setting) keep routing trivial but multiply as
// the network grows; Max-Min d-hop clusters trade cluster-head count
// against member-to-head distance. The example forms Max-Min clusters
// for d = 1..4 on a static deployment, validates the invariants, and
// compares against the d-hop extension of the paper's head-ratio
// heuristic.
//
//	go run ./examples/dhopclustering
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/netsim"
)

func main() {
	log.SetFlags(0)
	net := core.Network{N: 500, R: 0.9, V: 0, Density: 2}
	sim, err := netsim.New(netsim.Config{
		N: net.N, Side: net.Side(), Range: net.R, Dt: 1, Seed: 17,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d nodes, range %.2g, region %.3gx%.3g — mean degree %.1f\n\n",
		net.N, net.R, net.Side(), net.Side(), sim.MeanDegree())

	header := []string{"d (hops)", "clusters", "head ratio", "mean hops to head", "max hops", "model N·P_d"}
	var rows [][]string
	for d := 1; d <= 4; d++ {
		a, err := cluster.FormMaxMin(sim, d)
		if err != nil {
			log.Fatal(err)
		}
		if err := a.Check(sim); err != nil {
			log.Fatalf("d=%d: invariants violated: %v", d, err)
		}
		var dist float64
		maxDist := 0
		for _, h := range a.Dist {
			dist += float64(h)
			if h > maxDist {
				maxDist = h
			}
		}
		model, err := net.DHopExpectedClusters(d)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", d),
			fmt.Sprintf("%d", a.NumHeads()),
			fmt.Sprintf("%.3f", a.HeadRatio()),
			fmt.Sprintf("%.2f", dist/float64(len(a.Dist))),
			fmt.Sprintf("%d", maxDist),
			fmt.Sprintf("%.1f", model),
		})
	}
	fmt.Print(metrics.RenderTable(header, rows))
	fmt.Println("\nReading: each extra hop roughly divides the cluster count while")
	fmt.Println("pushing members farther from their heads — pick d where the backbone")
	fmt.Println("is small enough for inter-cluster routing but intra-cluster paths")
	fmt.Println("still fit the latency budget. The analytical column extends the")
	fmt.Println("paper's P ≈ 1/√(d+1) heuristic to d-hop balls; like Figure 5 it is")
	fmt.Println("sparse-regime-accurate and over-predicts as the ball densifies.")
}
