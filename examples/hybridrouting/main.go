// Hybridrouting: end-to-end packet delivery over the full protocol
// stack. The example runs a mobile network with HELLO discovery, LID
// clustering with reactive maintenance, and the hybrid routing protocol;
// it sends localized traffic between pairs while nodes move, at a low
// and a high traffic intensity, and compares control traffic against
// flat AODV flooding on the identical scenario — the trade-off that
// motivates the paper: proactive state costs mobility-driven updates,
// flooding costs traffic-driven storms.
//
//	go run ./examples/hybridrouting
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/metrics"
	"repro/internal/mobility"
	"repro/internal/netsim"
	"repro/internal/routing"
	"repro/internal/simrand"
)

const (
	nodes    = 200
	side     = 10.0
	rng      = 1.8
	speed    = 0.05
	seed     = 7
	duration = 40.0
)

func main() {
	log.SetFlags(0)
	header := []string{"stack", "sends", "delivered", "floods", "intra (no flood)", "ctrl msgs", "ctrl bits"}
	var rows [][]string
	for _, sends := range []int{200, 1200} {
		hs, ht := runHybrid(sends)
		as, at := runFlatAODV(sends)
		rows = append(rows,
			row("clustered hybrid", sends, hs, ht),
			row("flat AODV", sends, as, at),
		)
		_ = as
	}
	fmt.Printf("localized traffic over %g time units, %d mobile nodes\n\n", duration, nodes)
	fmt.Print(metrics.RenderTable(header, rows))
	fmt.Println("\nReading: the hybrid stack pays a standing, mobility-driven tax (HELLO,")
	fmt.Println("CLUSTER, ROUTE tables) independent of offered load, serves same-cluster")
	fmt.Println("packets from its proactive tables with no flood, and confines the")
	fmt.Println("remaining floods to the head/gateway backbone. Flat AODV has no standing")
	fmt.Println("cost but floods all nodes per cache miss, so it is cheaper at light load")
	fmt.Println("and loses decisively as traffic intensity grows — the 6× increase in")
	fmt.Println("offered load here raises its control bits 5.3× versus 2.4× for the")
	fmt.Println("clustered stack, exactly the regime the paper targets.")
}

// row formats one result line.
func row(name string, sends int, s routing.Stats, t netsim.Tallies) []string {
	ctrlMsgs := t.Of(netsim.MsgHello).Msgs + t.Of(netsim.MsgCluster).Msgs +
		t.Of(netsim.MsgRoute).Msgs + t.Of(netsim.MsgRouteDiscovery).Msgs
	ctrlBits := t.Of(netsim.MsgHello).Bits + t.Of(netsim.MsgCluster).Bits +
		t.Of(netsim.MsgRoute).Bits + t.Of(netsim.MsgRouteDiscovery).Bits
	intra := float64(sends) - s.Discoveries - s.CacheHits - s.DeliveryFailures
	return []string{
		name,
		fmt.Sprintf("%d", sends),
		fmt.Sprintf("%.0f", float64(sends)-s.DeliveryFailures),
		fmt.Sprintf("%.0f", s.Discoveries),
		fmt.Sprintf("%.0f", intra),
		fmt.Sprintf("%.0f", ctrlMsgs),
		fmt.Sprintf("%.0f", ctrlBits),
	}
}

// runHybrid drives the clustered stack.
func runHybrid(sends int) (routing.Stats, netsim.Tallies) {
	sim := newSim()
	maint, err := cluster.NewMaintainer(cluster.LID{}, 128)
	check(err)
	hello, err := routing.NewHello(64)
	check(err)
	hybrid, err := routing.NewHybrid(maint, routing.DefaultSizes)
	check(err)
	check(sim.Register(hello, maint, hybrid))
	drive(sim, sends, func(src, dst netsim.NodeID) { hybrid.Send(src, dst) })
	return hybrid.Stats(), sim.Tallies()
}

// runFlatAODV drives the flat reactive baseline on the same scenario.
func runFlatAODV(sends int) (routing.Stats, netsim.Tallies) {
	sim := newSim()
	hello, err := routing.NewHello(64)
	check(err)
	aodv, err := routing.NewFlatAODV(routing.DefaultSizes)
	check(err)
	check(sim.Register(hello, aodv))
	drive(sim, sends, func(src, dst netsim.NodeID) { aodv.Send(src, dst) })
	return aodv.Stats(), sim.Tallies()
}

// newSim builds the shared scenario (identical seed → identical motion).
func newSim() *netsim.Sim {
	sim, err := netsim.New(netsim.Config{
		N: nodes, Side: side, Range: rng, Dt: 0.05, Seed: seed,
		Model: mobility.EpochRWP{Speed: speed, Epoch: 10},
	})
	check(err)
	return sim
}

// drive advances the simulation `duration` time units, spreading `sends`
// packets evenly. Traffic has locality, as real workloads do: 70% of
// packets go to a node within 2.5 units of the source (often the same
// cluster — served proactively by the hybrid stack), the rest to a
// uniformly random destination. Both stacks see the identical motion
// and pair sequence (same seeds).
func drive(sim *netsim.Sim, sends int, send func(src, dst netsim.NodeID)) {
	pick := simrand.New(99).Split("traffic").Rand()
	check(sim.Start())
	interval := duration / float64(sends)
	for i := 0; i < sends; i++ {
		if err := sim.Run(interval); err != nil {
			log.Fatal(err)
		}
		src := netsim.NodeID(pick.Intn(nodes))
		dst := netsim.NodeID(pick.Intn(nodes))
		if pick.Float64() < 0.7 {
			if near := nearbyNode(sim, src, 2.5, pick.Intn(nodes)); near >= 0 {
				dst = near
			}
		}
		send(src, dst)
	}
}

// nearbyNode returns a node within dist of src, scanning from a random
// start offset so the choice varies; -1 when none exists.
func nearbyNode(sim *netsim.Sim, src netsim.NodeID, dist float64, start int) netsim.NodeID {
	p := sim.Position(src)
	for k := 0; k < nodes; k++ {
		id := netsim.NodeID((start + k) % nodes)
		if id == src {
			continue
		}
		if sim.Position(id).Dist(p) <= dist {
			return id
		}
	}
	return -1
}

func check(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
