// Quickstart: evaluate the paper's analytical overhead model for one
// scenario, then validate it against a short simulation — the 30-second
// tour of the library.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	log.SetFlags(0)

	// A 400-node network at density 4 nodes per unit area (10×10
	// region), transmission range 1.5, everyone moving at speed 0.05.
	net := core.Network{N: 400, R: 1.5, V: 0.05, Density: 4}
	if err := net.Validate(); err != nil {
		log.Fatal(err)
	}

	// Closed-form predictions (Claims 1-2, Eqns 1-18).
	p, err := net.LIDHeadRatioExact()
	if err != nil {
		log.Fatal(err)
	}
	rates, err := net.ControlRates(p)
	if err != nil {
		log.Fatal(err)
	}
	overheads, err := net.ControlOverheads(p, core.DefaultMessageSizes)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analysis: d=%.1f neighbors, λ=%.3f link changes/node/s, LID P=%.3f\n",
		net.ExpectedNeighbors(), net.LinkChangeRate(), p)
	fmt.Printf("analysis: f_hello=%.3f  f_cluster=%.3f  f_route=%.3f msg/node/s\n",
		rates.Hello, rates.Cluster, rates.Route)
	fmt.Printf("analysis: total control overhead %.0f bits/node/s (ROUTE share %.0f%%)\n\n",
		overheads.Total(), 100*overheads.Route/overheads.Total())

	// Validate by simulation: epoch-RWP mobility, LID clustering with
	// reactive maintenance, hybrid routing — the paper's §4 setup.
	opts := experiments.DefaultOptions()
	opts.TargetEvents = 10_000 // short demo run
	m, err := experiments.MeasureRates(net, opts)
	if err != nil {
		log.Fatal(err)
	}
	simRates, err := net.ControlRates(m.HeadRatio) // analysis at measured P
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulation (%.0f time units): d=%.1f, λ=%.3f, maintained P=%.3f\n",
		m.Duration, m.MeanDegree, m.LinkChangeRate, m.HeadRatio)
	fmt.Printf("simulation: f_hello=%.3f (analysis %.3f)\n", m.FHello, simRates.Hello)
	fmt.Printf("simulation: f_cluster=%.3f (analysis %.3f)\n", m.FCluster, simRates.Cluster)
	fmt.Printf("simulation: f_route=%.3f (analysis %.3f)\n", m.FRoute, simRates.Route)
}
